"""NCLIQUE(1) verifiers for the natural problems of Section 6.1.

The paper: "NCLIQUE(1) contains most natural decision problems that have
been studied in the congested clique, as well as many NP-complete
problems such as k-colouring and Hamiltonian path."  Each factory here
returns a constant-round verifier (a
:class:`~repro.core.nondeterminism.NondeterministicAlgorithm`) together
with a centralised *prover* mapping yes-instances to accepting
labellings — so NCLIQUE(1) membership of each problem is witnessed
executably: the prover's labelling is accepted, and (for miniatures)
exhaustive search confirms no labelling is accepted on no-instances.
"""

from __future__ import annotations

from typing import Callable

from ..clique.bits import BitReader, BitString, BitWriter, uint_width
from ..clique.graph import CliqueGraph
from ..clique.node import Node
from ..clique.primitives import all_broadcast
from ..problems import catalog
from .nondeterminism import Labelling, NondeterministicAlgorithm

__all__ = [
    "VerifiedProblem",
    "k_colouring_verifier",
    "hamiltonian_path_verifier",
    "triangle_verifier",
    "k_independent_set_verifier",
    "k_dominating_set_verifier",
    "k_vertex_cover_verifier",
]


class VerifiedProblem:
    """Bundle: decision problem + NCLIQUE(1) verifier + prover."""

    def __init__(self, problem, algorithm, prover):
        self.problem = problem
        self.algorithm = algorithm
        #: graph -> accepting Labelling, or None for no-instances.
        self.prover: Callable[[CliqueGraph], Labelling | None] = prover

    def __repr__(self):
        return f"VerifiedProblem({self.problem.name!r})"


def _colour_width(k: int) -> int:
    return uint_width(max(1, k - 1))


def k_colouring_verifier(k: int) -> VerifiedProblem:
    """Label = own colour; one broadcast round; check properness."""
    cw = _colour_width(k)

    def program(node: Node):
        label: BitString = node.aux["label"]
        if len(label) != cw:
            # Labels are fixed-width; malformed -> reject, but keep the
            # protocol in lockstep by broadcasting a dummy colour.
            yield from all_broadcast(node, BitString.zeros(cw))
            return 0
        colours = yield from all_broadcast(node, label)
        mine = label.value
        if mine >= k:
            return 0
        row = node.input
        for u in range(node.n):
            if u != node.id and row[u] and colours[u].value == mine:
                return 0
        return 1

    def prover(graph: CliqueGraph) -> Labelling | None:
        colouring = catalog.k_colouring_problem(k).certifier(graph)
        if colouring is None:
            return None
        return tuple(BitString(c, cw) for c in colouring)

    return VerifiedProblem(
        catalog.k_colouring_problem(k),
        NondeterministicAlgorithm(
            name=f"{k}-colouring-verifier",
            program=program,
            label_size=lambda n: cw,
            running_time=lambda n: max(1, -(-cw // max(1, (n - 1).bit_length()))),
        ),
        prover,
    )


def hamiltonian_path_verifier() -> VerifiedProblem:
    """Label = position on the path; check permutation + adjacency."""

    def program(node: Node):
        n = node.n
        pw = uint_width(max(1, n - 1))
        label: BitString = node.aux["label"]
        if len(label) != pw:
            yield from all_broadcast(node, BitString.zeros(pw))
            return 0
        positions = yield from all_broadcast(node, label)
        pos = [p.value for p in positions]
        if sorted(pos) != list(range(n)):
            return 0
        row = node.input
        mine = pos[node.id]
        if mine < n - 1:
            successor = pos.index(mine + 1)
            if not row[successor]:
                return 0
        return 1

    def prover(graph: CliqueGraph) -> Labelling | None:
        path = catalog.hamiltonian_path_problem().certifier(graph)
        if path is None:
            return None
        n = graph.n
        pw = uint_width(max(1, n - 1))
        pos = [0] * n
        for i, v in enumerate(path):
            pos[v] = i
        return tuple(BitString(p, pw) for p in pos)

    return VerifiedProblem(
        catalog.hamiltonian_path_problem(),
        NondeterministicAlgorithm(
            name="hamiltonian-path-verifier",
            program=program,
            label_size=lambda n: uint_width(max(1, n - 1)),
            running_time=lambda n: 1,
        ),
        prover,
    )


def triangle_verifier() -> VerifiedProblem:
    """Label = the claimed triangle (three node ids, same at every
    node); members check their edges, everyone checks label agreement."""

    def program(node: Node):
        n = node.n
        vw = uint_width(max(1, n - 1))
        label: BitString = node.aux["label"]
        if len(label) != 3 * vw:
            yield from all_broadcast(node, BitString.zeros(3 * vw))
            return 0
        labels = yield from all_broadcast(node, label)
        if any(lab != label for lab in labels):
            return 0
        r = BitReader(label)
        a, b, c = (r.read_uint(vw) for _ in range(3))
        if len({a, b, c}) != 3:
            return 0
        row = node.input
        me = node.id
        for x, y in ((a, b), (a, c), (b, c)):
            if me == x and not row[y]:
                return 0
            if me == y and not row[x]:
                return 0
        return 1

    def prover(graph: CliqueGraph) -> Labelling | None:
        tri = catalog.triangle_problem().certifier(graph)
        if tri is None:
            return None
        vw = uint_width(max(1, graph.n - 1))
        w = BitWriter()
        for v in tri:
            w.write_uint(v, vw)
        label = w.finish()
        return tuple(label for _ in range(graph.n))

    return VerifiedProblem(
        catalog.triangle_problem(),
        NondeterministicAlgorithm(
            name="triangle-verifier",
            program=program,
            label_size=lambda n: 3 * uint_width(max(1, n - 1)),
            running_time=lambda n: 3,
        ),
        prover,
    )


def _membership_verifier(
    name: str,
    problem_factory,
    k: int,
    check,  # check(node, row, members) -> bool, local test
    exact_count: bool,
):
    """Shared shape for the set problems: label = 1 membership bit."""

    def program(node: Node):
        label: BitString = node.aux["label"]
        if len(label) != 1:
            yield from all_broadcast(node, BitString.zeros(1))
            return 0
        bits = yield from all_broadcast(node, label)
        members = {v for v in range(node.n) if bits[v].value == 1}
        if exact_count and len(members) != k:
            return 0
        if not exact_count and len(members) > k:
            return 0
        row = node.input
        return int(check(node, row, members))

    def make_prover(problem):
        def prover(graph: CliqueGraph) -> Labelling | None:
            witness = problem.certifier(graph)
            if witness is None:
                return None
            member = set(witness)
            return tuple(
                BitString(1 if v in member else 0, 1) for v in range(graph.n)
            )

        return prover

    problem = problem_factory(k)
    return VerifiedProblem(
        problem,
        NondeterministicAlgorithm(
            name=name,
            program=program,
            label_size=lambda n: 1,
            running_time=lambda n: 1,
        ),
        make_prover(problem),
    )


def k_independent_set_verifier(k: int) -> VerifiedProblem:
    """Label = 1 membership bit; members check independence locally."""

    def check(node, row, members):
        if node.id in members:
            return not any(
                row[u] for u in members if u != node.id
            )
        return True

    return _membership_verifier(
        f"{k}-IS-verifier",
        catalog.k_independent_set_problem,
        k,
        check,
        exact_count=True,
    )


def k_dominating_set_verifier(k: int) -> VerifiedProblem:
    """Label = 1 membership bit; everyone checks it is dominated."""

    def check(node, row, members):
        return node.id in members or any(row[u] for u in members)

    return _membership_verifier(
        f"{k}-DS-verifier",
        catalog.k_dominating_set_problem,
        k,
        check,
        exact_count=True,
    )


def k_vertex_cover_verifier(k: int) -> VerifiedProblem:
    """Label = 1 membership bit; non-members check their edges covered."""

    def check(node, row, members):
        if node.id in members:
            return True
        return not any(
            row[u] and u not in members for u in range(node.n)
        )

    return _membership_verifier(
        f"{k}-VC-verifier",
        catalog.k_vertex_cover_problem,
        k,
        check,
        exact_count=False,
    )
