"""Edge labelling problems — the canonical NCLIQUE(1) family (§6.1).

Section 6.1 defines an edge labelling problem by a computable
neighbourhood constraint: label every edge of the *clique* with an
``O(log n)``-bit label so that "the labels satisfy the local constraints
at all nodes".  Theorem 6: ``NCLIQUE(1) subseteq CLIQUE(T)`` iff every
edge labelling problem is solvable in ``O(T)`` rounds, via the
compilation "the edge labels are the valid communication transcripts of
an accepting run of A".

We implement that compilation executably.  The label of the clique edge
``{u, v}`` is the pair of per-round message sequences exchanged on that
edge; the local constraint at ``u`` checks that *some* certificate
``z_u`` makes ``A`` at ``u`` — fed exactly the incoming halves of ``u``'s
incident labels — send exactly the outgoing halves and accept.  Because
the shared label pins down each channel's content for both endpoints, a
labelling satisfying every node's constraint glues into one global
accepting execution, so

    the compiled problem is solvable  iff  G is in the language,

which the tests verify exhaustively on miniatures.  (The constraint is
node-local over ``u``'s incident labels *jointly* — the reading required
for the completeness direction: a per-edge-independent reading is
provably insufficient, e.g. on K4 every single edge of the compiled 2-IS
problem has an individually-allowed label, yet K4 has no 2-IS.)
"""

from __future__ import annotations

import itertools
from typing import Callable

import numpy as np

from ..clique.bits import BitString
from ..clique.graph import CliqueGraph
from .nondeterminism import NondeterministicAlgorithm
from .normal_form import simulate_node_locally

__all__ = ["EdgeLabel", "LocalRun", "EdgeLabellingProblem", "compile_verifier"]


#: An edge label: (messages a->b per round, messages b->a per round),
#: oriented with a < b; each message is a bit-string literal or None.
EdgeLabel = tuple[tuple[str | None, ...], tuple[str | None, ...]]

#: A node's local run: (sent[v][round], received[v][round]) literal grids.
LocalRun = tuple[tuple[tuple[str | None, ...], ...], tuple[tuple[str | None, ...], ...]]


class EdgeLabellingProblem:
    """An edge labelling problem with node-local constraints.

    ``node_constraint(n, u, neighbourhood, incident)`` decides whether
    the labels of all clique edges at ``u`` are jointly allowed given
    ``u``'s input neighbourhood; ``incident[v] = (out_half, in_half)``
    holds the label of edge ``{u, v}`` oriented from ``u``'s side.
    ``local_runs(n, u, neighbourhood)`` enumerates the accepting local
    executions of ``u`` (used by the solver); solvability = the runs can
    be glued consistently across all nodes.
    """

    def __init__(
        self,
        name: str,
        node_constraint: Callable[[int, int, tuple, dict], bool],
        local_runs: Callable[[int, int, tuple], list[LocalRun]],
    ) -> None:
        self.name = name
        self.node_constraint = node_constraint
        self.local_runs = local_runs

    def __repr__(self) -> str:
        return f"EdgeLabellingProblem({self.name!r})"

    # -- validity of a given labelling ------------------------------------

    def check(
        self, graph: CliqueGraph, labelling: dict[tuple[int, int], EdgeLabel]
    ) -> bool:
        """Is ``labelling`` (keys = pairs u < v over the clique) valid?"""
        n = graph.n
        for u in range(n):
            incident = {}
            for v in range(n):
                if v == u:
                    continue
                a, b = min(u, v), max(u, v)
                lab = labelling.get((a, b))
                if lab is None:
                    return False
                out_half, in_half = (lab[0], lab[1]) if u == a else (lab[1], lab[0])
                incident[v] = (out_half, in_half)
            neighbourhood = tuple(bool(x) for x in graph.row(u))
            if not self.node_constraint(n, u, neighbourhood, incident):
                return False
        return True

    # -- solving -----------------------------------------------------------

    def solve(
        self, graph: CliqueGraph
    ) -> dict[tuple[int, int], EdgeLabel] | None:
        """Find a valid labelling by gluing accepting local runs.

        Backtracks over nodes in id order; a partial assignment is pruned
        as soon as two chosen runs disagree about their shared channel.
        Exhaustive over the run lists — miniature instances.
        """
        n = graph.n
        runs = [
            self.local_runs(
                n, u, tuple(bool(x) for x in graph.row(u))
            )
            for u in range(n)
        ]
        if any(not r for r in runs):
            return None
        chosen: list[LocalRun] = []

        def consistent(u: int, run_u: LocalRun) -> bool:
            sent_u, recv_u = run_u
            for v in range(u):
                sent_v, recv_v = chosen[v]
                if sent_u[v] != recv_v[u] or recv_u[v] != sent_v[u]:
                    return False
            return True

        def backtrack(u: int) -> bool:
            if u == n:
                return True
            for run in runs[u]:
                if consistent(u, run):
                    chosen.append(run)
                    if backtrack(u + 1):
                        return True
                    chosen.pop()
            return False

        if not backtrack(0):
            return None

        labelling: dict[tuple[int, int], EdgeLabel] = {}
        for a in range(n):
            for b in range(a + 1, n):
                labelling[(a, b)] = (chosen[a][0][b], chosen[b][0][a])
        return labelling

    def solvable(self, graph: CliqueGraph) -> bool:
        """Whether a valid labelling exists for ``graph``."""
        return self.solve(graph) is not None


def _message_options(bandwidth: int) -> list[str | None]:
    """All possible per-round channel contents: silence or any non-empty
    bit string of at most ``bandwidth`` bits (as literals)."""
    options: list[str | None] = [None]
    for length in range(1, bandwidth + 1):
        for value in range(1 << length):
            options.append(format(value, f"0{length}b"))
    return options


def compile_verifier(verified, *, bandwidth: int | None = None) -> EdgeLabellingProblem:
    """Theorem 6's compilation: the canonical edge labelling problem of
    an NCLIQUE(1) verifier (a :class:`~repro.core.verifiers.VerifiedProblem`).

    The node constraint at ``u`` searches all ``2^(S(n))`` certificates
    and replays ``A`` locally against the incident labels — exactly the
    step-(3) search of the Theorem 3 normal form, with the messages
    pinned down by the labels.
    """
    algo: NondeterministicAlgorithm = verified.algorithm

    def bw_for(n: int) -> int:
        return bandwidth if bandwidth is not None else max(
            1, (max(2, n) - 1).bit_length()
        )

    def replay(n, u, neighbourhood, inbox_seq):
        """Accepting (certificate, sent) pairs of ``u`` under the given
        received messages."""
        S = algo.label_size(n)
        T = algo.running_time(n)
        bw = bw_for(n)
        row = np.array(neighbourhood, dtype=bool)
        out = []
        for cand in range(1 << S):
            z = BitString(cand, S)
            sent, output, completed = simulate_node_locally(
                algo.program, u, n, bw, row, {"label": z}, inbox_seq
            )
            if completed and output == 1:
                out.append(sent)
        return out

    def node_constraint(n: int, u: int, neighbourhood: tuple, incident) -> bool:
        T = algo.running_time(n)
        inbox_seq: list[dict[int, BitString]] = []
        for r in range(T):
            inbox = {}
            for v, (_out, in_half) in incident.items():
                if r < len(in_half) and in_half[r] is not None:
                    inbox[v] = BitString.from_str(in_half[r])
            inbox_seq.append(inbox)
        for sent in replay(n, u, neighbourhood, inbox_seq):
            ok = True
            for v, (out_half, _in) in incident.items():
                for r in range(T):
                    claimed = out_half[r] if r < len(out_half) else None
                    actual = sent[r].get(v) if r < len(sent) else None
                    actual_str = None if actual is None else actual.to_str()
                    if claimed != actual_str:
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                return True
        return False

    def local_runs(n: int, u: int, neighbourhood: tuple) -> list[LocalRun]:
        T = algo.running_time(n)
        options = _message_options(bw_for(n))
        others = [v for v in range(n) if v != u]
        chains = list(itertools.product(options, repeat=T))
        out: list[LocalRun] = []
        for assignment in itertools.product(chains, repeat=len(others)):
            inbox_seq = []
            for r in range(T):
                inbox = {}
                for v, chain in zip(others, assignment):
                    if chain[r] is not None:
                        inbox[v] = BitString.from_str(chain[r])
                inbox_seq.append(inbox)
            for sent in replay(n, u, neighbourhood, inbox_seq):
                sent_grid = tuple(
                    tuple(
                        (
                            sent[r].get(v).to_str()
                            if r < len(sent) and sent[r].get(v) is not None
                            else None
                        )
                        for r in range(T)
                    )
                    if v != u
                    else tuple(None for _ in range(T))
                    for v in range(n)
                )
                recv_grid = tuple(
                    tuple(
                        assignment[others.index(v)][r] if v != u else None
                        for r in range(T)
                    )
                    for v in range(n)
                )
                out.append((sent_grid, recv_grid))
        return out

    return EdgeLabellingProblem(
        name=f"edge-labelling[{algo.name}]",
        node_constraint=node_constraint,
        local_runs=local_runs,
    )
