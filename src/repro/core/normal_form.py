"""The NCLIQUE normal form — Theorem 3.

Any nondeterministic algorithm ``A`` with running time ``T(n)`` can be
rewritten as an algorithm ``B`` with the same running time whose labels
are *claimed communication transcripts* of ``O(T(n) n log n)`` bits:

1. each node checks its label parses as a transcript of the right shape,
2. nodes *replay* the transcripts for ``T(n)`` rounds and verify that
   every received message matches the claim,
3. each node locally searches for an original label ``z'_v`` under which
   ``A``, fed the claimed received messages, would have produced exactly
   the claimed sent messages and accepted.

This module implements the transformation executably: the resulting
:class:`~repro.core.nondeterminism.NondeterministicAlgorithm` really
replays transcripts on the simulator, and its prover extracts transcripts
from a recorded accepting run of ``A``.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from ..clique.bits import BitString, uint_width
from ..clique.errors import CliqueError, EncodingError
from ..clique.graph import CliqueGraph
from ..clique.node import Node
from ..clique.transcript import RoundRecord, Transcript
from .nondeterminism import (
    Labelling,
    NondeterministicAlgorithm,
    run_with_labelling,
)

__all__ = [
    "simulate_node_locally",
    "normal_form_label_bound",
    "to_normal_form",
    "transcript_labelling",
]


def simulate_node_locally(
    program,
    node_id: int,
    n: int,
    bandwidth: int,
    node_input: Any,
    aux: Any,
    inbox_sequence: Sequence[dict[int, BitString]],
) -> tuple[list[dict[int, BitString]], Any, bool]:
    """Run one node of ``program`` in isolation, feeding its inboxes from
    ``inbox_sequence``.

    This is the "locally try all labels" primitive of Theorem 3 step (3):
    nondeterministic choices are local, so a single node's execution is
    fully determined by its input, its label, and what it receives.

    Returns ``(sent_per_round, output, completed)``; ``completed`` is
    False when the node wanted more rounds than the sequence provides.
    """
    node = Node(node_id, n, bandwidth, node_input, aux)
    gen = program(node)
    sent: list[dict[int, BitString]] = []
    output = None
    try:
        next(gen)
    except StopIteration as stop:
        first = [dict(node._outbox)]
        first += [{} for _ in range(max(0, len(inbox_sequence) - 1))]
        return first, stop.value, True
    except CliqueError:
        # The program itself rejected the situation (e.g. a collective
        # detected inconsistent message lengths): not an accepting run.
        return sent, None, False
    for inbox in inbox_sequence:
        sent.append(dict(node._outbox))
        node._outbox = {}
        node._inbox = dict(inbox)
        node._round += 1
        try:
            next(gen)
        except StopIteration as stop:
            output = stop.value
            # pad remaining rounds with silence
            while len(sent) < len(inbox_sequence):
                sent.append({})
            return sent, output, True
        except CliqueError:
            return sent, None, False
    return sent, None, False


def normal_form_label_bound(n: int, rounds: int, bandwidth: int) -> int:
    """Upper bound on the encoded transcript size in bits — the
    ``O(T(n) n log n)`` of Theorem 3, made concrete for our encoding."""
    node_width = uint_width(max(1, n - 1))
    per_message = node_width + 16 + bandwidth
    per_round = 2 * (node_width + (n - 1) * per_message)
    return 32 + rounds * per_round


def transcript_labelling(
    algo: NondeterministicAlgorithm,
    graph: CliqueGraph,
    labelling: Labelling,
    *,
    bandwidth_multiplier: int = 1,
) -> tuple[Labelling, bool]:
    """Run ``A`` under ``labelling`` with transcript recording; return the
    transcripts (padded to exactly ``T(n)`` rounds) encoded as the
    normal-form labelling, plus whether the run accepted."""
    n = graph.n
    T = algo.running_time(n)
    result = run_with_labelling(
        algo,
        graph,
        labelling,
        bandwidth_multiplier=bandwidth_multiplier,
        record_transcripts=True,
    )
    accepted = all(out == 1 for out in result.outputs.values())
    labels = []
    for v in range(n):
        t = result.transcripts[v]
        if t.num_rounds() > T:
            raise CliqueError(
                f"algorithm {algo.name} declared T(n)={T} but ran "
                f"{t.num_rounds()} rounds"
            )
        rounds = list(t.rounds) + [
            RoundRecord() for _ in range(T - t.num_rounds())
        ]
        padded = Transcript(node=v, n=n, rounds=tuple(rounds))
        labels.append(padded.encode())
    return tuple(labels), accepted


def to_normal_form(
    algo: NondeterministicAlgorithm,
    *,
    bandwidth_multiplier: int = 1,
) -> NondeterministicAlgorithm:
    """Theorem 3's transformation ``A -> B``.

    ``B``'s labels are claimed transcripts; ``B`` replays them and locally
    searches all ``2^(S(n))`` original labels per node.  ``B`` decides the
    same language as ``A`` with the same round count and labelling size
    ``O(T(n) n log n)``.
    """

    def program(node: Node) -> Generator[None, None, int]:
        n = node.n
        me = node.id
        T = algo.running_time(n)
        S = algo.label_size(n)
        label: BitString = node.aux["label"]

        claimed: Transcript | None = None
        if len(label) <= normal_form_label_bound(n, T, node.bandwidth):
            try:
                decoded = Transcript.decode(me, n, label)
                if decoded.num_rounds() == T:
                    claimed = decoded
            except (EncodingError, CliqueError):
                claimed = None

        ok = claimed is not None

        # Step (2): replay for exactly T rounds, verifying consistency.
        inbox_seq: list[dict[int, BitString]] = []
        for r in range(T):
            if ok:
                for dst, payload in claimed.rounds[r].sent.items():
                    if (
                        0 <= dst < n
                        and dst != me
                        and 0 < len(payload) <= node.bandwidth
                    ):
                        node.send(dst, payload)
                    else:
                        ok = False
            yield
            inbox = dict(node.inbox)
            inbox_seq.append(inbox)
            if ok and inbox != dict(claimed.rounds[r].received):
                ok = False
        if not ok:
            return 0

        # Step (3): local search for an original label consistent with
        # the claimed transcript and accepting.
        for candidate in range(1 << S):
            z = BitString(candidate, S)
            aux = dict(node.aux)
            aux["label"] = z
            sent, output, completed = simulate_node_locally(
                algo.program,
                me,
                n,
                node.bandwidth,
                node.input,
                aux,
                [dict(claimed.rounds[r].received) for r in range(T)],
            )
            if not completed or output != 1:
                continue
            if all(
                sent[r] == dict(claimed.rounds[r].sent) for r in range(T)
            ):
                return 1
        return 0

    return NondeterministicAlgorithm(
        name=f"{algo.name}-normal-form",
        program=program,
        label_size=lambda n: normal_form_label_bound(
            n,
            algo.running_time(n),
            # label bound is stated for the bandwidth B is run at
            bandwidth_multiplier
            * max(1, (max(2, n) - 1).bit_length()),
        ),
        running_time=algo.running_time,
    )
