"""Randomised congested clique — the Section 8 extension.

The paper's conclusions sketch the randomised landscape: the counting
arguments extend to randomised protocols, and "Theorem 4 implies that
there are problems that cannot be solved in O(S(n)) rounds with
one-sided Monte Carlo algorithms, but can be solved in O(T(n)) rounds
deterministically ... as the Monte Carlo algorithm can be converted to a
nondeterministic algorithm."

This module makes that conversion executable:

* a :class:`MonteCarloAlgorithm` is a node program reading per-node
  private random bits from ``node.aux["random"]``,
* :func:`run_with_randomness` runs one trial from a seed;
  :func:`estimate_acceptance` estimates the acceptance probability,
* :func:`monte_carlo_to_nondeterministic` reinterprets the random bits
  as a nondeterministic certificate — exactly the paper's remark: for a
  *one-sided* algorithm (no-instances never accept), "some random string
  accepts" holds iff the instance is a yes-instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..clique.bits import BitString
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram, RunResult
from .nondeterminism import NondeterministicAlgorithm

__all__ = [
    "MonteCarloAlgorithm",
    "run_with_randomness",
    "estimate_acceptance",
    "monte_carlo_to_nondeterministic",
]


@dataclass(frozen=True)
class MonteCarloAlgorithm:
    """A randomised algorithm with declared randomness budget.

    ``program`` reads ``node.aux["random"]`` (a BitString of
    ``randomness(n)`` private bits); ``one_sided=True`` asserts that
    no-instances are rejected under *every* random string (the class the
    Section 8 conversion applies to).
    """

    name: str
    program: NodeProgram
    randomness: Callable[[int], int]
    running_time: Callable[[int], int]
    one_sided: bool = True


def _random_labels(
    algo: MonteCarloAlgorithm, n: int, seed: int
) -> list[BitString]:
    rng = np.random.default_rng(seed)
    bits = algo.randomness(n)
    return [
        BitString(int(rng.integers(0, 1 << bits)) if bits else 0, bits)
        for _ in range(n)
    ]


def run_with_randomness(
    algo: MonteCarloAlgorithm,
    graph: CliqueGraph,
    seed: int,
    *,
    bandwidth_multiplier: int = 1,
) -> RunResult:
    """One trial: draw each node's private random bits from ``seed``."""
    labels = _random_labels(algo, graph.n, seed)

    def aux(v: int) -> dict:
        return {"random": labels[v]}

    clique = CongestedClique(graph.n, bandwidth_multiplier=bandwidth_multiplier)
    return clique.run(algo.program, graph, aux=aux)


def estimate_acceptance(
    algo: MonteCarloAlgorithm,
    graph: CliqueGraph,
    trials: int,
    *,
    seed: int = 0,
    bandwidth_multiplier: int = 1,
) -> float:
    """Fraction of trials on which all nodes accept."""
    hits = 0
    for t in range(trials):
        result = run_with_randomness(
            algo,
            graph,
            seed + t,
            bandwidth_multiplier=bandwidth_multiplier,
        )
        if all(o == 1 for o in result.outputs.values()):
            hits += 1
    return hits / trials


def monte_carlo_to_nondeterministic(
    algo: MonteCarloAlgorithm,
) -> NondeterministicAlgorithm:
    """The Section 8 conversion: certificates = random strings.

    For a one-sided Monte Carlo algorithm, ``exists z : A(G, z) = 1``
    holds exactly on yes-instances (soundness from one-sidedness,
    completeness from the positive acceptance probability), so the same
    program read as a nondeterministic verifier decides the language
    with the same running time and labelling size R(n).
    """
    if not algo.one_sided:
        raise ValueError(
            "only one-sided Monte Carlo algorithms convert soundly "
            "(two-sided error breaks the 'exists z' direction)"
        )

    def program(node):
        aux = dict(node.aux)
        aux["random"] = aux.pop("label")
        inner = algo.program(
            _aux_view(node, aux)
        )
        result = yield from _delegate(inner)
        return result

    return NondeterministicAlgorithm(
        name=f"{algo.name}-as-nondeterministic",
        program=program,
        label_size=algo.randomness,
        running_time=algo.running_time,
    )


class _aux_view:
    """A node proxy overriding only ``aux`` (labels renamed to random)."""

    __slots__ = ("_node", "aux")

    def __init__(self, node, aux):
        self._node = node
        self.aux = aux

    def __getattr__(self, name):
        return getattr(self._node, name)


def _delegate(gen):
    """``yield from`` for a generator built on a proxied node."""
    result = yield from gen
    return result
