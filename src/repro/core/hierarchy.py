"""The constant-round decision hierarchy — Section 6.2.

A ``k``-labelling algorithm takes ``k`` labellings ``z_1 .. z_k``; the
class Sigma_k quantifies them alternately starting with "exists":

    G in L  iff  exists z_1 forall z_2 ... Q z_k : A(G, z_1..z_k) = 1.

We provide:

* :func:`evaluate_alternation` — exhaustive quantifier evaluation over
  fixed-width label spaces (miniature instances),
* :func:`sigma2_universal_algorithm` — the **Theorem 7** construction
  showing every decision problem is in Sigma_2 of the *unlimited*
  hierarchy: the existential labelling guesses the whole input graph at
  every node, the universal labelling spot-checks one encoded bit per
  node, and each node finally checks its guess against the language.

The logarithmic hierarchy (labels of O(n log n) bits) is separated from
all finite levels by counting (Theorem 8) — see
:mod:`repro.core.counting` and :mod:`repro.core.time_hierarchy`.
"""

from __future__ import annotations

import itertools
from typing import Generator, Iterable, Sequence

from ..clique.bits import BitReader, BitString, BitWriter, uint_width
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram
from ..clique.node import Node
from ..clique.primitives import all_broadcast
from ..problems.base import DecisionProblem

__all__ = [
    "run_k_labelling",
    "evaluate_alternation",
    "graph_encoding_bits",
    "encode_graph_guess",
    "decode_graph_guess",
    "sigma2_universal_algorithm",
    "sigma2_honest_guess",
    "sigma2_decides",
    "complement_acceptance",
    "pi2_universal_algorithm",
    "pi2_decides",
]


def run_k_labelling(
    program: NodeProgram,
    graph: CliqueGraph,
    labellings: Sequence[Sequence[BitString]],
    *,
    bandwidth_multiplier: int = 1,
) -> bool:
    """One run of a k-labelling algorithm; node ``v`` receives
    ``node.aux["labels"] = (z_1[v], .., z_k[v])``.  Returns acceptance
    (all nodes output 1)."""
    n = graph.n

    def aux(v: int) -> dict:
        return {"labels": tuple(z[v] for z in labellings)}

    clique = CongestedClique(n, bandwidth_multiplier=bandwidth_multiplier)
    result = clique.run(program, graph, aux=aux)
    return all(out == 1 for out in result.outputs.values())


def evaluate_alternation(
    program: NodeProgram,
    graph: CliqueGraph,
    quantifiers: Sequence[str],
    label_spaces: Sequence[Iterable[Sequence[BitString]]],
    *,
    bandwidth_multiplier: int = 1,
) -> bool:
    """Exhaustively evaluate ``Q_1 z_1 Q_2 z_2 ... : A(G, z..) = 1``.

    ``quantifiers[i]`` is ``"exists"`` or ``"forall"``;
    ``label_spaces[i]`` iterates over candidate labellings for ``z_i``
    (each a length-n sequence of BitStrings).  Exponential — miniatures
    only.
    """
    if len(quantifiers) != len(label_spaces):
        raise ValueError("one label space per quantifier")

    def recurse(level: int, chosen: list) -> bool:
        if level == len(quantifiers):
            return run_k_labelling(
                program,
                graph,
                chosen,
                bandwidth_multiplier=bandwidth_multiplier,
            )
        q = quantifiers[level]
        space = list(label_spaces[level])
        if q == "exists":
            return any(recurse(level + 1, chosen + [z]) for z in space)
        if q == "forall":
            return all(recurse(level + 1, chosen + [z]) for z in space)
        raise ValueError(f"unknown quantifier {q!r}")

    return recurse(0, [])


# ---------------------------------------------------------------------------
# Theorem 7: the unlimited hierarchy collapses to Sigma_2


def graph_encoding_bits(n: int) -> int:
    """Bits to encode an undirected n-node graph (upper triangle)."""
    return n * (n - 1) // 2


def _pair_of_slot(slot: int, n: int) -> tuple[int, int]:
    """The (u, v) pair of upper-triangle slot index ``slot``."""
    u = 0
    remaining = slot
    row = n - 1
    while remaining >= row:
        remaining -= row
        u += 1
        row -= 1
    return u, u + 1 + remaining


def encode_graph_guess(graph: CliqueGraph) -> BitString:
    """Encode a graph as its upper-triangle bit vector (the Sigma_2
    existential label of Theorem 7)."""
    n = graph.n
    w = BitWriter()
    for u in range(n):
        for v in range(u + 1, n):
            w.write_bit(int(graph.has_edge(u, v)))
    return w.finish()


def decode_graph_guess(bits: BitString, n: int) -> CliqueGraph:
    """Inverse of :func:`encode_graph_guess`."""
    edges = []
    r = BitReader(bits)
    for u in range(n):
        for v in range(u + 1, n):
            if r.read_bit():
                edges.append((u, v))
    return CliqueGraph.from_edges(n, edges)


def sigma2_universal_algorithm(problem: DecisionProblem) -> NodeProgram:
    """Theorem 7's 2-labelling algorithm for an arbitrary decision
    problem L:

    * ``z_1[v]``: node v's guess of the whole input graph
      (``n(n-1)/2`` bits — this needs the *unlimited* hierarchy),
    * ``z_2[v]``: an index into the encoding (``O(log n)`` bits),
    * protocol: v broadcasts ``(index_v, bit of its guess at index_v)``;
      everyone cross-checks all broadcasts against their own guess and
      their local view of G; finally v checks ``G'_v in L``.
    """

    def program(node: Node) -> Generator[None, None, int]:
        n = node.n
        enc_bits = graph_encoding_bits(n)
        slot_width = uint_width(max(1, enc_bits - 1))
        guess_bits, index_bits = node.aux["labels"]

        ok = len(guess_bits) == enc_bits and len(index_bits) == slot_width
        my_slot = index_bits.value if ok else 0
        if ok and my_slot >= enc_bits:
            my_slot = my_slot % max(1, enc_bits)
        my_bit = guess_bits[my_slot] if ok else 0

        # Step (2): broadcast (index, bit); O(log n) bits, O(1) rounds.
        payload = (
            BitWriter().write_uint(my_slot, slot_width).write_bit(my_bit).finish()
        )
        broadcasts = yield from all_broadcast(node, payload)
        if not ok:
            return 0

        row = node.input
        for v in range(n):
            r = BitReader(broadcasts[v])
            slot = r.read_uint(slot_width)
            bit = r.read_bit()
            if slot >= enc_bits:
                return 0
            # consistency with our own guess
            if guess_bits[slot] != bit:
                return 0
            # consistency with our local view of the real input
            a, b = _pair_of_slot(slot, n)
            if node.id in (a, b):
                other = b if node.id == a else a
                if int(row[other]) != bit:
                    return 0

        # Step (3): local membership check of the guessed graph.
        guessed = decode_graph_guess(guess_bits, n)
        return int(problem.contains(guessed))

    return program


def sigma2_honest_guess(graph: CliqueGraph) -> list[BitString]:
    """The honest existential labelling: every node guesses the real G."""
    enc = encode_graph_guess(graph)
    return [enc for _ in range(graph.n)]


def all_index_labellings(n: int) -> Iterable[list[BitString]]:
    """All universal labellings: each node picks one encoding slot."""
    enc_bits = graph_encoding_bits(n)
    slot_width = uint_width(max(1, enc_bits - 1))
    slots = [BitString(i, slot_width) for i in range(enc_bits)]
    return (list(combo) for combo in itertools.product(slots, repeat=n))


def complement_acceptance(program: NodeProgram) -> NodeProgram:
    """Complement a k-labelling algorithm's *acceptance*.

    Acceptance means *all* nodes output 1, so per-node output negation
    does not complement it.  The honest construction costs one extra
    round: after running the inner algorithm, every node broadcasts its
    verdict bit and all output 1 iff some inner verdict was 0.  This is
    the step behind the paper's "it follows that all decision problems
    are also in Pi_2" (Theorem 7): L in Pi_2 because the Sigma_2
    algorithm for the complement of L, acceptance-complemented, realises
    ``forall z1 exists z2``.
    """

    def wrapped(node: Node) -> Generator[None, None, int]:
        inner_verdict = yield from _as_subroutine(program, node)
        bit = 1 if inner_verdict == 1 else 0
        verdicts = yield from all_broadcast(node, BitString(bit, 1))
        rejected_somewhere = any(v.value == 0 for v in verdicts)
        return 1 if rejected_somewhere else 0

    return wrapped


def _as_subroutine(program: NodeProgram, node: Node):
    """Delegate to another node program as a generator subroutine."""
    result = yield from program(node)
    return result


def pi2_universal_algorithm(problem: DecisionProblem) -> NodeProgram:
    """Theorem 7's Pi_2 side: the acceptance-complemented Sigma_2
    algorithm of the *complement* language, so that
    ``G in L iff forall z1 exists z2 : A(G, z1, z2) = 1``."""
    from ..problems.base import complement

    return complement_acceptance(
        sigma2_universal_algorithm(complement(problem))
    )


def pi2_decides(
    problem: DecisionProblem,
    graph: CliqueGraph,
    *,
    bandwidth_multiplier: int = 2,
) -> bool:
    """Exhaustively evaluate the Pi_2 sentence (miniature sizes only:
    the existential inner space is all per-node graph guesses)."""
    n = graph.n
    program = pi2_universal_algorithm(problem)
    enc_bits = graph_encoding_bits(n)
    guesses = [BitString(x, enc_bits) for x in range(1 << enc_bits)]
    exists_space = [
        list(c) for c in itertools.product(guesses, repeat=n)
    ]
    universal = list(all_index_labellings(n))

    # forall z1 (graph guesses) exists z2 (probe indices)... note the
    # quantifier ORDER: in the complemented algorithm the outer label is
    # the Sigma_2 guess and the inner the probe, so Pi_2's forall binds
    # the guess and exists binds the probe.
    return all(
        any(
            run_k_labelling(
                program,
                graph,
                [z1, z2],
                bandwidth_multiplier=bandwidth_multiplier,
            )
            for z2 in universal
        )
        for z1 in exists_space
    )


def sigma2_decides(
    problem: DecisionProblem,
    graph: CliqueGraph,
    *,
    bandwidth_multiplier: int = 2,
    exists_space: Iterable[Sequence[BitString]] | None = None,
) -> bool:
    """Evaluate Theorem 7's Sigma_2 sentence on ``graph`` exhaustively.

    By default the existential space ranges over *all* per-node graph
    guesses — ``2^(n(n-1)/2 * n)`` labellings, so this is for n <= 3; pass
    ``exists_space`` to restrict (e.g. product of a few guesses) for
    larger miniatures.  Early exits make the common paths fast: the
    honest guess is tried first.
    """
    n = graph.n
    program = sigma2_universal_algorithm(problem)
    universal = list(all_index_labellings(n))

    def sentence_holds_for(guess_labelling) -> bool:
        return all(
            run_k_labelling(
                program,
                graph,
                [guess_labelling, z2],
                bandwidth_multiplier=bandwidth_multiplier,
            )
            for z2 in universal
        )

    honest = sigma2_honest_guess(graph)
    if sentence_holds_for(honest):
        return True
    if exists_space is None:
        enc_bits = graph_encoding_bits(n)
        per_node = [BitString(x, enc_bits) for x in range(1 << enc_bits)]
        exists_space = itertools.product(per_node, repeat=n)
    for guess in exists_space:
        guess = list(guess)
        if guess == honest:
            continue
        if sentence_holds_for(guess):
            return True
    return False
