"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure1``     print the Figure 1 exponent table and reduction arrows
``miniature``   run the Theorem 2 time-hierarchy miniature end to end
``counting``    print the Lemma 1 / Theorem 2/4/8 counting tables
``run``         run a distributed algorithm on a random input graph
``sweep``       run an (algorithm, n, seed) grid through the parallel
                sweep engine and fit round/load exponents
``stats``       run one catalog algorithm and print its per-round
                RunMetrics table (optionally link/phase breakdowns)
``trace``       run one catalog algorithm under the structured tracer
                and print (or write to JSONL) the event stream
``bench``       the engine benchmark suite: ``bench run`` emits a
                schema-versioned ``BENCH_<sha>.json``, ``bench compare``
                ratchets two artifacts, ``bench update-baseline``
                refreshes the committed baseline, ``bench list`` names
                the workloads
``serve``       run the long-lived service daemon on a local socket
                (warm worker pool + resident run cache); ``--status``
                and ``--stop`` talk to a running daemon
``demo``        run one of the bundled example scenarios

``repro run --remote`` sends the run to a ``repro serve`` daemon instead
of executing in-process, skipping interpreter cold-start and reusing the
daemon's cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.report import format_table, magnitude

__all__ = ["main", "build_parser"]


class _LazyChoices:
    """Argparse ``choices`` container that resolves on first use.

    Parser construction stays free of the heavy engine/catalog imports;
    the loader runs only when argparse checks membership or formats
    help, i.e. when the relevant subcommand is actually exercised.
    """

    def __init__(self, load) -> None:
        self._load = load
        self._values: "list | None" = None

    def _resolve(self) -> list:
        if self._values is None:
            self._values = list(self._load())
        return self._values

    def __iter__(self):
        return iter(self._resolve())

    def __contains__(self, item) -> bool:
        return item in self._resolve()

    def __len__(self) -> int:
        return len(self._resolve())


def _engine_choices() -> "list[str]":
    """Every registered backend, lazily-registered ones included — the
    registry is the single source of truth, not a hardcoded list."""
    from .engine.base import engine_names

    return engine_names()


def _check_choices() -> "list[str]":
    from .engine.base import CHECK_LEVELS

    return list(CHECK_LEVELS)


def _catalog_choices() -> "list[str]":
    from .engine.diff import CATALOG

    return sorted(CATALOG)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (see the module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of 'Towards a Complexity Theory for "
            "the Congested Clique' (Korhonen & Suomela, SPAA 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure1", help="the fine-grained landscape")
    p_fig.add_argument("--k", type=int, default=3)
    p_fig.add_argument("--omega", type=float, default=None)
    p_fig.add_argument(
        "--arrows", action="store_true", help="also list reduction arrows"
    )

    sub.add_parser(
        "miniature", help="Theorem 2 executed at (n=2, b=1, L=2)"
    )

    p_count = sub.add_parser("counting", help="Lemma 1 counting tables")
    p_count.add_argument(
        "--theorem", choices=["2", "4", "8"], default="2"
    )
    p_count.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 256, 1024]
    )

    p_run = sub.add_parser("run", help="run an algorithm on G(n, p)")
    p_run.add_argument(
        "algorithm",
        choices=[
            "triangle",
            "kds",
            "kvc",
            "kis",
            "mst",
            "bfs",
            "maxis",
            "median",
        ],
    )
    p_run.add_argument("--n", type=int, default=32)
    p_run.add_argument("--p", type=float, default=0.3)
    p_run.add_argument("--k", type=int, default=2)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--engine",
        choices=_LazyChoices(_engine_choices),
        default=None,
        help="execution backend (default: reference)",
    )
    p_run.add_argument(
        "--check",
        choices=_LazyChoices(_check_choices),
        default=None,
        help="validation level (default: the engine's own default)",
    )
    p_run.add_argument(
        "--remote", action="store_true",
        help=(
            "send the run to a 'repro serve' daemon instead of executing "
            "in-process (catalog algorithms only)"
        ),
    )
    p_run.add_argument(
        "--socket", default=None, metavar="PATH",
        help="daemon socket for --remote (default: the serve default)",
    )

    # Derived from repro.engine.diff.CATALOG on first use, so new
    # catalog entries appear here without any CLI change.
    catalog_names = _LazyChoices(_catalog_choices)

    p_sweep = sub.add_parser(
        "sweep",
        help="run an (algorithm, n, seed) grid through the sweep engine",
    )
    p_sweep.add_argument("algorithm", choices=catalog_names)
    p_sweep.add_argument(
        "--ns", type=int, nargs="+", default=[16, 32, 64],
        help="clique sizes of the grid",
    )
    p_sweep.add_argument(
        "--seeds", type=int, default=2, help="seeds per clique size"
    )
    p_sweep.add_argument("--k", type=int, default=None)
    p_sweep.add_argument("--p", type=float, default=None)
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: auto; 1 = serial)",
    )
    p_sweep.add_argument(
        "--engine",
        choices=_LazyChoices(_engine_choices),
        default="fast",
    )
    p_sweep.add_argument(
        "--check", choices=_LazyChoices(_check_choices), default="bandwidth",
        help="validation level",
    )
    p_sweep.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "shard-parallel execution on supporting engines "
            "(columnar; 0 = one shard per available core)"
        ),
    )
    p_sweep.add_argument(
        "--cache", default=None, metavar="DIR",
        help="run-cache directory (reruns of the same grid are free)",
    )
    p_sweep.add_argument("--base-seed", type=int, default=0)
    p_sweep.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help=(
            "deterministic fault plan applied to every point, e.g. "
            "'drop=0.1,corrupt=0.01,seed=7'"
        ),
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-point wall-clock deadline; hung points are killed and "
            "marked failed (runs points serially in watched children)"
        ),
    )
    p_sweep.add_argument(
        "--retries", type=int, default=0,
        help="retry a failing point this many times before marking it failed",
    )

    p_stats = sub.add_parser(
        "stats",
        help="run one catalog algorithm and print per-round run metrics",
    )
    p_stats.add_argument("algorithm", choices=catalog_names)
    p_stats.add_argument("--n", type=int, default=16)
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument("--k", type=int, default=None)
    p_stats.add_argument("--p", type=float, default=None)
    p_stats.add_argument(
        "--engine",
        choices=_LazyChoices(_engine_choices),
        default="fast",
    )
    p_stats.add_argument(
        "--check", choices=_LazyChoices(_check_choices), default=None
    )
    p_stats.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "shard-parallel execution on supporting engines "
            "(columnar; 0 = one shard per available core)"
        ),
    )
    p_stats.add_argument(
        "--links", type=int, default=0, metavar="K",
        help="also print the K busiest links (per-link accounting)",
    )
    p_stats.add_argument(
        "--profile", action="store_true",
        help="also print the wall-clock phase breakdown",
    )
    p_stats.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help=(
            "inject deterministic faults and show per-round/per-kind "
            "fault counts, e.g. 'drop=0.1,seed=7' or "
            "'byzantine=equivocate+forge,f=2,seed=7'"
        ),
    )
    p_stats.add_argument(
        "--f", type=int, default=None, metavar="F",
        help=(
            "fault tolerance parameter for the Byzantine catalog "
            "entries (bracha, dolev)"
        ),
    )
    p_stats.add_argument(
        "--resilient", action="store_true",
        help=(
            "wrap the program in the ack/retransmit resilience layer "
            "and print its retransmit/unacked counters"
        ),
    )
    p_stats.add_argument(
        "--cache", default=None, metavar="DIR",
        help=(
            "run-cache directory (shared with 'repro sweep'; a repeated "
            "invocation serves the metrics from disk)"
        ),
    )

    p_predict = sub.add_parser(
        "predict",
        help=(
            "evaluate an algorithm's closed-form symbolic cost model "
            "(and cross-validate it exactly against metered runs)"
        ),
    )
    # Deliberately NOT restricted to parser choices: unknown names must
    # reach get_cost_model() so its did-you-mean hint fires.
    p_predict.add_argument(
        "algorithm", nargs="?", default=None,
        help="catalog algorithm (omit with --validate to gate the full catalog)",
    )
    p_predict.add_argument(
        "--n", type=int, default=1_000_000, metavar="N",
        help="extrapolation target clique size (default: 1000000)",
    )
    p_predict.add_argument("--seed", type=int, default=0)
    p_predict.add_argument("--k", type=int, default=None)
    p_predict.add_argument("--p", type=float, default=None)
    p_predict.add_argument("--f", type=int, default=None)
    p_predict.add_argument(
        "--validate", action="store_true",
        help=(
            "run the exact gate: execute the catalog point(s) fault-free "
            "on every engine and require zero-tolerance agreement with "
            "the closed forms (exit 1 on any mismatch)"
        ),
    )
    p_predict.add_argument(
        "--ns", type=int, nargs="+", default=None, metavar="N",
        help="clique sizes for --validate (default: 8 11 16)",
    )
    p_predict.add_argument(
        "--engines", nargs="+", default=["reference", "fast"], metavar="NAME",
        help="engines the --validate gate runs (default: reference fast)",
    )
    p_predict.add_argument(
        "--markdown", action="store_true",
        help="emit the --validate report as a GitHub-flavoured table",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run one catalog algorithm under the structured event tracer",
    )
    p_trace.add_argument("algorithm", choices=catalog_names)
    p_trace.add_argument("--n", type=int, default=16)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--k", type=int, default=None)
    p_trace.add_argument("--p", type=float, default=None)
    p_trace.add_argument(
        "--engine",
        choices=_LazyChoices(_engine_choices),
        default="fast",
    )
    p_trace.add_argument(
        "--check", choices=_LazyChoices(_check_choices), default=None
    )
    p_trace.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "shard-parallel execution on supporting engines "
            "(columnar; 0 = one shard per available core)"
        ),
    )
    p_trace.add_argument(
        "--limit", type=int, default=40,
        help="print at most this many of the last events (ring buffer)",
    )
    p_trace.add_argument(
        "--sample", type=int, default=1,
        help="keep every K-th message event (boundaries always kept)",
    )
    p_trace.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="stream all events to FILE as JSON lines instead of printing",
    )

    p_bench = sub.add_parser(
        "bench",
        help="engine benchmark suite: run / compare / update-baseline",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="time the workload suite and emit BENCH_<sha>.json"
    )
    b_run.add_argument(
        "--quick", action="store_true",
        help="reduced sizes/budgets (the CI configuration)",
    )
    b_run.add_argument(
        "--out", default=None, metavar="FILE",
        help="artifact path (default: ./BENCH_<git-sha>.json)",
    )
    b_run.add_argument(
        "--only", nargs="+", default=None, metavar="WORKLOAD",
        help="run only these workloads (see 'repro bench list')",
    )
    b_run.add_argument(
        "--repeats", type=int, default=None,
        help="timed repetitions per workload (default: 5, quick: 3)",
    )
    b_run.add_argument(
        "--warmup", type=int, default=1,
        help="untimed warmup calls per workload",
    )
    b_run.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="override the per-workload time budget",
    )

    b_cmp = bench_sub.add_parser(
        "compare",
        help="ratchet NEW against OLD; exit 1 on any regression",
    )
    b_cmp.add_argument("old", help="baseline BENCH_*.json (or baseline.json)")
    b_cmp.add_argument("new", help="candidate BENCH_*.json")
    b_cmp.add_argument(
        "--tolerance", type=float, default=1.25,
        help="slowdown ratio that counts as a regression (default 1.25)",
    )
    b_cmp.add_argument(
        "--markdown", action="store_true",
        help="print a GitHub-flavoured markdown table (for job summaries)",
    )

    b_base = bench_sub.add_parser(
        "update-baseline",
        help="re-time the suite and rewrite the committed baseline",
    )
    b_base.add_argument(
        "--out", default="benchmarks/baseline.json", metavar="FILE",
        help="baseline path (default: benchmarks/baseline.json)",
    )
    b_base.add_argument(
        "--full", action="store_true",
        help="record full-size workloads (default: quick, matching CI)",
    )
    b_base.add_argument("--repeats", type=int, default=None)

    bench_sub.add_parser("list", help="list the registered workloads")

    p_serve = sub.add_parser(
        "serve",
        help="run the service daemon (warm pool + resident run cache)",
    )
    p_serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listening socket path (default: a per-user temp path)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="concurrent request worker threads (default: 4)",
    )
    p_serve.add_argument(
        "--queue-size", type=int, default=32,
        help="pending-request bound before 'busy' rejections (default: 32)",
    )
    p_serve.add_argument(
        "--cache", default=None, metavar="DIR",
        help="resident run-cache directory (default: the cache default)",
    )
    p_serve.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="LRU bound on cache entries (default: unbounded)",
    )
    p_serve.add_argument(
        "--cache-max-entry-bytes", type=int, default=None, metavar="BYTES",
        help="admission bound on one pickled entry (default: unbounded)",
    )
    p_serve.add_argument(
        "--status", action="store_true",
        help="print a running daemon's status and exit",
    )
    p_serve.add_argument(
        "--stop", action="store_true",
        help="ask a running daemon to shut down and exit",
    )

    p_demo = sub.add_parser("demo", help="run a bundled example scenario")
    p_demo.add_argument(
        "name",
        choices=[
            "quickstart",
            "landscape",
            "nondeterminism",
            "routing",
            "hierarchy",
            "search",
        ],
    )
    return parser


def _cmd_figure1(args) -> int:
    from .core.exponents import OMEGA, figure1_registry

    registry = figure1_registry(
        k=args.k, omega=args.omega if args.omega else OMEGA
    )
    print(
        format_table(
            registry.table(),
            columns=["problem", "delta_upper", "direct_bound", "source"],
            title=f"Figure 1 exponents (k={args.k})",
        )
    )
    if args.arrows:
        print()
        print(
            format_table(
                [
                    {
                        "arrow": f"delta({e.frm}) <= delta({e.to})",
                        "source": e.source or "-",
                    }
                    for e in registry.arrows()
                ],
                title="reduction arrows",
            )
        )
    return 0


def _cmd_miniature(_args) -> int:
    from .core.time_hierarchy import time_hierarchy_miniature

    audit = time_hierarchy_miniature()
    rows = [
        {
            "n": audit.n,
            "b": audit.b,
            "L": audit.L,
            "#functions": audit.num_functions,
            "#1-round computable": audit.num_computable_one_round,
            "first hard f": audit.f_index,
            "decider rounds": audit.decider_rounds,
            "separates": audit.separates,
        }
    ]
    print(format_table(rows, title="Theorem 2 miniature"))
    return 0 if audit.separates else 1


def _cmd_counting(args) -> int:
    from .core.time_hierarchy import separation_table

    rows = separation_table(args.sizes, f"theorem{args.theorem}")
    for row in rows:
        for key in ("log2_protocols", "log2_functions"):
            if key in row:
                row[key] = magnitude(row[key])
    print(format_table(rows, title=f"Theorem {args.theorem} counting"))
    return 0


#: ``repro run`` algorithm names -> diff-catalog names for ``--remote``
#: (the daemon speaks the catalog; algorithms without a catalog entry
#: cannot run remotely).
_REMOTE_ALGORITHMS = {
    "triangle": "subgraph",
    "kds": "kds",
    "kvc": "kvc",
    "kis": "kis",
    "bfs": "bfs",
}


def _cmd_run_remote(args) -> int:
    from .service import ServiceClient, ServiceError

    catalog_name = _REMOTE_ALGORITHMS.get(args.algorithm)
    if catalog_name is None:
        print(
            f"repro run --remote: {args.algorithm!r} has no catalog entry; "
            f"remote-capable algorithms: {sorted(_REMOTE_ALGORITHMS)}",
            file=sys.stderr,
        )
        return 2
    config = {"n": args.n, "p": args.p, "seed": args.seed}
    if args.algorithm in ("kds", "kvc", "kis"):
        config["k"] = args.k
    client = ServiceClient(args.socket)
    try:
        reply = client.run(
            catalog_name, config, engine=args.engine or "fast"
        )
    except ServiceError as exc:
        print(f"repro run --remote: {exc}", file=sys.stderr)
        return 2
    print(f"daemon: {client.socket_path}")
    print(f"cached: {'yes' if reply['cached'] else 'no'}")
    print(f"output: {reply['common_output']}")
    print(f"rounds: {reply['rounds']}")
    if "metrics" in reply:
        m = reply["metrics"]
        print(
            f"bits: {m['total_bits']} total "
            f"(max node load {m['max_load_bits']})"
        )
    return 0


def _cmd_run(args) -> int:
    from .clique.algorithm import run_algorithm
    from .problems import generators as gen

    if args.remote:
        return _cmd_run_remote(args)

    g = gen.random_graph(args.n, args.p, args.seed)
    k = args.k

    if args.algorithm == "triangle":
        from .algorithms import triangle_detection

        def prog(node):
            return (yield from triangle_detection(node))

    elif args.algorithm == "kds":
        from .algorithms import k_dominating_set

        def prog(node):
            return (yield from k_dominating_set(node, k))

    elif args.algorithm == "kvc":
        from .algorithms import k_vertex_cover

        def prog(node):
            return (yield from k_vertex_cover(node, k))

    elif args.algorithm == "kis":
        from .algorithms import k_independent_set_detection

        def prog(node):
            return (yield from k_independent_set_detection(node, k))

    elif args.algorithm == "mst":
        from .algorithms import boruvka_mst

        g = gen.random_weighted_graph(args.n, args.p, 50, args.seed)

        def prog(node):
            return (yield from boruvka_mst(node))

        result = run_algorithm(prog, g, aux=lambda v: {"max_weight": 50})
        mst = result.common_output()
        print(f"graph: {g}")
        print(f"MST edges: {sorted(mst)}")
        print(f"rounds: {result.rounds}")
        return 0

    elif args.algorithm == "bfs":
        from .algorithms import bfs_distances

        def prog(node):
            d = yield from bfs_distances(node)
            return d.tolist()

        result = run_algorithm(prog, g, aux=0)
        print(f"graph: {g}")
        print(f"distances from node 0: {result.common_output()}")
        print(f"rounds: {result.rounds}")
        return 0

    elif args.algorithm == "maxis":
        from .algorithms import max_independent_set

        def prog(node):
            return (yield from max_independent_set(node))

    elif args.algorithm == "median":
        from .algorithms import distributed_median
        from .problems.generators import rng_from

        rng = rng_from(args.seed)
        keys = {
            v: rng.integers(0, 256, size=4).tolist() for v in range(args.n)
        }

        def prog(node):
            return (yield from distributed_median(node, keys[node.id], 8))

    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.algorithm)

    result = run_algorithm(
        prog, g, bandwidth_multiplier=2, engine=args.engine, check=args.check
    )
    print(f"graph: {g}")
    print(f"output: {result.common_output()}")
    print(f"rounds: {result.rounds}")
    return 0


def _measured_load(result) -> int:
    """Max per-node routed payload bits (the exponent-bearing load),
    read from the run's :class:`repro.obs.RunMetrics`."""
    if result.metrics is not None:
        return result.metrics.routed_payload_load()
    # Metrics-off run: fall back to the raw per-node counters.
    return max(
        result.max_counter("route_payload_in_bits"),
        result.max_counter("route_payload_out_bits"),
    )


def _catalog_config(args) -> dict:
    """The diff-catalog config dict shared by ``stats`` and ``trace``."""
    config = {"algorithm": args.algorithm, "n": args.n, "seed": args.seed}
    if args.k is not None:
        config["k"] = args.k
    if args.p is not None:
        config["p"] = args.p
    if getattr(args, "f", None) is not None:
        config["f"] = args.f
    return config


def _big(x: int) -> str:
    """Exact when it fits on a line, order-of-magnitude otherwise."""
    from .analysis.report import magnitude

    return str(x) if x < 10**20 else magnitude(x)


def _cmd_predict(args) -> int:
    from .analysis import symbolic
    from .analysis.report import format_table
    from .clique.errors import CliqueError

    if args.validate:
        names = [args.algorithm] if args.algorithm else None
        try:
            report = symbolic.validate_symbolic(
                names=names,
                ns=args.ns or symbolic.DEFAULT_VALIDATION_NS,
                config=_predict_config(args),
                engines=tuple(args.engines),
            )
        except CliqueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.markdown() if args.markdown else report.table())
        return 0 if report.ok else 1

    if not args.algorithm:
        print(
            "error: repro predict needs an algorithm (or --validate)",
            file=sys.stderr,
        )
        return 2
    try:
        model = symbolic.get_cost_model(args.algorithm)
    except CliqueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = _predict_config(args)
    print(f"algorithm: {model.name}")
    print(f"rounds        = {model.rounds}")
    print(f"message_bits  = {model.message_bits}")
    print(f"bulk_bits     = {model.bulk_bits}")
    if model.domain:
        print(f"domain: {model.domain}")
    if model.assumes:
        print(f"assumes: {model.assumes}")
    if model.exponent:
        print(f"exponent: {model.exponent}")
    target = max(2, int(args.n))
    ns = []
    cur = model.default_n
    while cur < target:
        ns.append(cur)
        cur *= 4
    ns.append(target)
    rows = []
    try:
        for point in symbolic.predict_points(model.name, ns, config):
            rows.append(
                {
                    "n": point.n,
                    "rounds": _big(point.rounds),
                    "message_bits": _big(point.message_bits),
                    "bulk_bits": _big(point.bulk_bits),
                    "total_bits": _big(point.total_bits),
                }
            )
    except CliqueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    print(format_table(rows, title="closed-form extrapolation"))
    return 0


def _predict_config(args) -> dict:
    """Config overrides shared by ``predict`` evaluation and validation."""
    config = {"seed": args.seed}
    if args.k is not None:
        config["k"] = args.k
    if args.p is not None:
        config["p"] = args.p
    if args.f is not None:
        config["f"] = args.f
    return config


def _cmd_stats(args) -> int:
    from .engine import ExecutionSpec, RunCache
    from .engine.diff import CATALOG, catalog_factory
    from .engine.pool import _point_key, run_spec
    from .obs import MetricsCollector

    assert args.algorithm in CATALOG  # parser choices mirror the catalog
    config = _catalog_config(args)
    collector = MetricsCollector(
        links=args.links > 0, profile=args.profile
    )
    execution = ExecutionSpec(
        engine=args.engine,
        check=args.check,
        observer=collector,
        fault_plan=args.fault_plan,
        shards=args.shards,
    )
    cache = RunCache(args.cache) if args.cache else None
    key = None
    result = None
    if cache is not None and not args.resilient:
        # Key-compatible with run_sweep so a sweep-warmed cache serves
        # stats lookups (and vice versa) when the configs line up.
        # (--resilient wraps the program, so the catalog key would
        # collide with the unwrapped run.)
        desc = execution.describe()
        key = _point_key(
            cache,
            catalog_factory,
            config,
            desc["engine"],
            desc["observer"],
            desc["fault_plan"],
        )
        hit = cache.get(key)
        if hit is not None:
            result, _ = hit
    if result is None:
        spec = catalog_factory(config)
        if args.resilient:
            from .faults import resilient

            spec.program = resilient(spec.program)
        result, value = run_spec(spec, execution=execution)
        if cache is not None and not args.resilient:
            cache.put(key, (result, value))
    metrics = result.metrics
    columns = [
        "round",
        "unicast_messages",
        "broadcast_messages",
        "bulk_messages",
        "message_bits",
        "bulk_bits",
        "max_load_node",
        "max_load_bits",
    ]
    if args.fault_plan is not None or metrics.total_faults:
        columns.append("faults")
    print(
        format_table(
            metrics.per_round_rows(),
            columns=columns,
            title=(
                f"per-round metrics: {args.algorithm} "
                f"(n={metrics.n}, B={metrics.bandwidth}, "
                f"{metrics.engine} engine)"
            ),
        )
    )
    node, load = metrics.max_node_load()
    summary = [
        {"quantity": "rounds", "value": metrics.rounds},
        {"quantity": "messages", "value": metrics.messages},
        {"quantity": "message bits", "value": metrics.message_bits},
        {"quantity": "bulk bits", "value": metrics.bulk_bits},
        {"quantity": f"max node load (node {node})", "value": load},
        {
            "quantity": "routed payload load",
            "value": metrics.routed_payload_load(),
        },
    ]
    if args.fault_plan is not None or metrics.total_faults:
        summary.append(
            {"quantity": "faults (total)", "value": metrics.total_faults}
        )
        for kind in sorted(metrics.faults):
            summary.append(
                {"quantity": f"faults: {kind}", "value": metrics.faults[kind]}
            )
    resilience = metrics.resilience
    if args.resilient or resilience:
        for key in sorted(resilience) or ("retransmits", "unacked"):
            summary.append(
                {
                    "quantity": f"resilience: {key}",
                    "value": resilience.get(key, 0),
                }
            )
    print()
    print(format_table(summary, title="run totals"))
    if args.links > 0:
        print()
        print(
            format_table(
                [
                    {"src": src, "dst": dst, "bits": bits}
                    for src, dst, bits in metrics.busiest_links(args.links)
                ],
                title=f"busiest links (top {args.links})",
            )
        )
    if args.profile:
        total = sum(metrics.phases.values()) or 1.0
        print()
        print(
            format_table(
                [
                    {
                        "phase": phase,
                        "seconds": round(secs, 6),
                        "share": f"{100 * secs / total:.1f}%",
                    }
                    for phase, secs in sorted(
                        metrics.phases.items(), key=lambda kv: -kv[1]
                    )
                ],
                title="phase profile (wall clock)",
            )
        )
    if cache is not None:
        print()
        print(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    return 0


def _cmd_trace(args) -> int:
    from .engine import ExecutionSpec
    from .engine.diff import CATALOG, catalog_factory
    from .engine.pool import run_spec
    from .obs import JSONLSink, RingBufferSink, Tracer

    assert args.algorithm in CATALOG  # parser choices mirror the catalog
    config = _catalog_config(args)
    if args.jsonl:
        sink = JSONLSink(args.jsonl)
    else:
        sink = RingBufferSink(capacity=max(args.limit, 1))
    tracer = Tracer(sink=sink, sample=args.sample)
    result, _ = run_spec(
        catalog_factory(config),
        execution=ExecutionSpec(
            engine=args.engine,
            check=args.check,
            observer=tracer,
            shards=args.shards,
        ),
    )
    if args.jsonl:
        print(
            f"{args.algorithm}: {result.rounds} rounds; wrote "
            f"{sink.emitted} events to {args.jsonl}"
        )
        return 0
    events = sink.events()
    rows = [
        {
            "event": e.kind,
            "round": e.round,
            "src": "-" if e.src is None else e.src,
            "dst": "-" if e.dst is None else e.dst,
            "bits": "-" if e.bits is None else e.bits,
            "channel": e.channel or "-",
            "detail": "" if e.detail is None else str(e.detail),
        }
        for e in events
    ]
    dropped = sink.dropped
    title = (
        f"trace: {args.algorithm} (n={args.n}, {args.engine} engine, "
        f"last {len(rows)} events"
        + (f", {dropped} earlier dropped" if dropped else "")
        + ")"
    )
    print(format_table(rows, title=title))
    return 0


def _cmd_sweep(args) -> int:
    from .analysis.fitting import fit_exponent
    from .engine import ExecutionSpec, RunCache, run_sweep
    from .engine.diff import CATALOG, catalog_factory

    assert args.algorithm in CATALOG  # parser choices mirror the catalog

    configs = []
    for n in args.ns:
        for s in range(args.seeds):
            config = {"algorithm": args.algorithm, "n": n, "seed": s}
            if args.k is not None:
                config["k"] = args.k
            if args.p is not None:
                config["p"] = args.p
            configs.append(config)

    execution = ExecutionSpec(
        engine=args.engine,
        check=args.check,
        fault_plan=args.fault_plan,
        shards=args.shards,
    )
    cache = RunCache(args.cache) if args.cache else None
    outcomes = run_sweep(
        catalog_factory,
        configs,
        workers=args.workers,
        execution=execution,
        cache=cache,
        base_seed=args.base_seed,
        timeout=args.timeout,
        retries=args.retries,
    )

    rows = [
        {
            "n": o.config["n"],
            "seed": o.config["seed"],
            "rounds": "FAILED" if o.failed else o.result.rounds,
            "message bits": "-" if o.failed else o.result.total_message_bits,
            "payload load (bits)": (
                "-" if o.failed else _measured_load(o.result)
            ),
            "cached": "yes" if o.from_cache else "-",
        }
        for o in outcomes
    ]
    print(
        format_table(
            rows,
            title=f"sweep: {args.algorithm} ({args.engine} engine, "
            f"{len(configs)} grid points)",
        )
    )
    if cache is not None:
        print(
            f"\ncache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"({cache.root})"
        )
    failures = [o for o in outcomes if o.failed]
    for o in failures:
        print(f"FAILED: {o.error}", file=sys.stderr)

    # Fitted exponents: mean rounds (and payload load, when measured)
    # per clique size, least-squares in log-log space.
    fits = []
    by_n: dict[int, list] = {}
    for o in outcomes:
        if not o.failed:
            by_n.setdefault(o.config["n"], []).append(o)
    ns = sorted(by_n)
    if len(ns) >= 2:
        mean_rounds = [
            sum(o.result.rounds for o in by_n[n]) / len(by_n[n]) for n in ns
        ]
        fit = fit_exponent(ns, [max(1, round(r)) for r in mean_rounds])
        fits.append(
            {
                "quantity": "rounds",
                "exponent (fit)": round(fit.slope, 3),
                "r^2": round(fit.r_squared, 4),
            }
        )
        mean_load = [
            sum(_measured_load(o.result) for o in by_n[n]) / len(by_n[n])
            for n in ns
        ]
        if all(load > 0 for load in mean_load):
            fit = fit_exponent(ns, [max(1, round(load)) for load in mean_load])
            fits.append(
                {
                    "quantity": "payload load (implied delta ~ fit - 1)",
                    "exponent (fit)": round(fit.slope, 3),
                    "r^2": round(fit.r_squared, 4),
                }
            )
    if fits:
        print()
        print(format_table(fits, title="fitted exponents (log-log)"))
    else:
        print("\n(need >= 2 distinct n for an exponent fit)")
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    from .bench import SUITE, compare_bench, default_output_path, run_suite
    from .clique.errors import CliqueError

    if args.bench_command == "list":
        print(
            format_table(
                [
                    {
                        "workload": w.name,
                        "description": w.description,
                        "budget (s)": w.time_budget,
                        "quick budget (s)": w.quick_time_budget,
                    }
                    for w in SUITE.values()
                ],
                title=f"benchmark suite ({len(SUITE)} workloads)",
            )
        )
        return 0

    if args.bench_command == "compare":
        comparison = compare_bench(
            args.old, args.new, tolerance=args.tolerance
        )
        if args.markdown:
            print(comparison.markdown_table())
        else:
            print(
                format_table(comparison.rows(), title=comparison.summary())
            )
        return 0 if comparison.ok else 1

    if args.bench_command == "update-baseline":
        report = run_suite(
            quick=not args.full,
            repeats=args.repeats,
            progress=lambda line: print(f"  {line}", file=sys.stderr),
        )
        path = report.write(args.out)
        print(
            f"baseline: {len(report.results)} workloads "
            f"({'full' if args.full else 'quick'} mode) -> {path}"
        )
        return 0

    assert args.bench_command == "run"
    try:
        report = run_suite(
            args.only,
            quick=args.quick,
            repeats=args.repeats,
            warmup=args.warmup,
            time_budget=args.budget,
            progress=lambda line: print(f"  {line}", file=sys.stderr),
        )
    except CliqueError as exc:
        # Typically an unknown --only name; the message carries the
        # valid workload list, so surface it instead of a traceback.
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2
    out = args.out if args.out else default_output_path(report.git_sha)
    path = report.write(out)
    print(
        format_table(
            report.rows(),
            title=(
                f"bench: {len(report.results)} workloads @ {report.git_sha}"
                f"{' (quick)' if report.quick else ''}"
            ),
        )
    )
    print(f"\nwrote {path}")
    return 0


def _cmd_serve(args) -> int:
    from .service import ServiceClient, ServiceError, serve

    if args.status or args.stop:
        client = ServiceClient(args.socket)
        try:
            if args.status:
                status = client.status()
                cache = status.pop("cache")
                pool = status.pop("pool")
                counters = status.pop("counters")
                rows = (
                    [{"key": k, "value": v} for k, v in status.items()]
                    + [
                        {"key": f"counters.{k}", "value": v}
                        for k, v in counters.items()
                    ]
                    + [
                        {"key": f"cache.{k}", "value": v}
                        for k, v in cache.items()
                    ]
                    + [
                        {"key": f"pool.{k}", "value": v}
                        for k, v in pool.items()
                    ]
                )
                print(format_table(rows, title="repro serve status"))
            if args.stop:
                client.shutdown()
                print("daemon stopping")
        except ServiceError as exc:
            print(f"repro serve: {exc}", file=sys.stderr)
            return 2
        return 0
    try:
        serve(
            args.socket,
            workers=args.workers,
            queue_size=args.queue_size,
            cache_root=args.cache,
            cache_max_entries=args.cache_max_entries,
            cache_max_entry_bytes=args.cache_max_entry_bytes,
        )
    except ServiceError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def _cmd_demo(args) -> int:
    import pathlib
    import runpy

    mapping = {
        "quickstart": "quickstart.py",
        "landscape": "fine_grained_landscape.py",
        "nondeterminism": "nondeterminism_demo.py",
        "routing": "cluster_routing.py",
        "hierarchy": "time_hierarchy_miniature.py",
        "search": "search_problems_and_broadcast.py",
    }
    script = (
        pathlib.Path(__file__).resolve().parent.parent.parent
        / "examples"
        / mapping[args.name]
    )
    if not script.exists():
        print(
            f"example {script} not found (demos need the source checkout)",
            file=sys.stderr,
        )
        return 2
    runpy.run_path(str(script), run_name="__main__")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return {
        "figure1": _cmd_figure1,
        "miniature": _cmd_miniature,
        "counting": _cmd_counting,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "stats": _cmd_stats,
        "predict": _cmd_predict,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "demo": _cmd_demo,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
