"""Theorem 10: k-independent-set reduces to k-dominating-set.

The construction (Section 7.2, illustrated by the paper's Figure 2):

* ``k`` cliques ``K_1..K_k``, each a copy of ``V``,
* for each pair ``i < j`` a *compatibility gadget*: an independent set
  ``I_{i,j}`` (another copy of ``V``) with
  - ``v_i`` in ``K_i`` adjacent to ``u_{i,j}`` for all ``u != v``, and
  - ``v_j`` in ``K_j`` adjacent to ``u_{i,j}`` for all ``u`` that are
    neither ``v`` nor neighbours of ``v`` in ``G``,
* two *special nodes* ``x_i, y_i`` attached to each clique ``K_i``.

Then ``G`` has an independent set of size ``k`` iff the new graph ``G'``
(on at most ``(k^2+k+2) n`` nodes) has a dominating set of size ``k``,
and a dominating set of ``G'`` reads back as an independent set of ``G``.

The module also runs the whole pipeline on the simulator: build ``G'``,
run the Theorem 9 k-DS algorithm on it, and map the witness back —
executable evidence for ``delta(k-IS) <= delta(k-DS)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clique.graph import CliqueGraph
from .base import Reduction

__all__ = [
    "IsToDsInstance",
    "is_to_ds_instance",
    "ds_witness_to_is",
    "is_witness_to_ds",
    "is_to_ds_reduction",
]


@dataclass(frozen=True)
class IsToDsInstance:
    """Index bookkeeping for the constructed graph G'.

    Node layout (all 0-based, n = |V(G)|):

    * clique ``K_i`` node for original ``v``:    ``i * n + v``
    * gadget ``I_{i,j}`` node for original ``v``: ``clique_end + pair_index(i,j) * n + v``
    * specials ``x_i`` / ``y_i``:                 ``gadget_end + 2i`` / ``+ 2i + 1``
    """

    n: int
    k: int
    num_nodes: int

    def clique_node(self, i: int, v: int) -> int:
        """G' node id of copy ``v`` in clique ``K_i``."""
        return i * self.n + v

    def _pair_index(self, i: int, j: int) -> int:
        if not 0 <= i < j < self.k:
            raise ValueError(f"need 0 <= i < j < k, got ({i},{j})")
        # pairs in lexicographic order
        return sum(self.k - 1 - a for a in range(i)) + (j - i - 1)

    def gadget_node(self, i: int, j: int, v: int) -> int:
        """G' node id of copy ``v`` in the gadget ``I_{i,j}``."""
        return self.k * self.n + self._pair_index(i, j) * self.n + v

    def special_node(self, i: int, which: int) -> int:
        """G' node id of ``x_i`` (which=0) or ``y_i`` (which=1)."""
        base = self.k * self.n + (self.k * (self.k - 1) // 2) * self.n
        return base + 2 * i + which

    def decode(self, node: int) -> tuple[str, tuple]:
        """Classify a G' node: ('clique', (i, v)) / ('gadget', (i, j, v))
        / ('special', (i, which))."""
        n, k = self.n, self.k
        if node < k * n:
            return "clique", (node // n, node % n)
        node -= k * n
        num_pairs = k * (k - 1) // 2
        if node < num_pairs * n:
            p, v = node // n, node % n
            # invert pair index
            i = 0
            while p >= k - 1 - i:
                p -= k - 1 - i
                i += 1
            return "gadget", (i, i + 1 + p, v)
        node -= num_pairs * n
        return "special", (node // 2, node % 2)


def is_to_ds_instance(graph: CliqueGraph, k: int) -> tuple[CliqueGraph, IsToDsInstance]:
    """Build G' from G (Figure 2's construction)."""
    if k < 1:
        raise ValueError("k must be positive")
    n = graph.n
    info = IsToDsInstance(
        n=n,
        k=k,
        num_nodes=k * n + (k * (k - 1) // 2) * n + 2 * k,
    )
    N = info.num_nodes
    adj = np.zeros((N, N), dtype=bool)

    def connect(a: int, b: int) -> None:
        adj[a, b] = adj[b, a] = True

    # cliques K_i
    for i in range(k):
        for v in range(n):
            for u in range(v + 1, n):
                connect(info.clique_node(i, v), info.clique_node(i, u))

    # compatibility gadgets
    for i in range(k):
        for j in range(i + 1, k):
            for v in range(n):
                vi = info.clique_node(i, v)
                vj = info.clique_node(j, v)
                for u in range(n):
                    if u == v:
                        continue
                    uij = info.gadget_node(i, j, u)
                    # K_i side: v_i adjacent to u_{i,j} for all u != v
                    connect(vi, uij)
                    # K_j side: v_j adjacent to u_{i,j} for u not in
                    # N_G(v) (and u != v)
                    if not graph.has_edge(v, u):
                        connect(vj, uij)

    # special nodes x_i, y_i attached to K_i
    for i in range(k):
        for which in (0, 1):
            s = info.special_node(i, which)
            for v in range(n):
                connect(s, info.clique_node(i, v))

    return CliqueGraph(adj), info


def is_witness_to_ds(
    witness: tuple[int, ...], info: IsToDsInstance
) -> tuple[int, ...]:
    """Map an independent set ``{v_1..v_k}`` of G to the dominating set
    ``{v_i in K_i}`` of G' (the forward direction of the proof)."""
    if len(witness) != info.k:
        raise ValueError(f"need a {info.k}-tuple")
    return tuple(
        info.clique_node(i, v) for i, v in enumerate(witness)
    )


def ds_witness_to_is(
    witness: tuple[int, ...], info: IsToDsInstance
) -> tuple[int, ...]:
    """Map a size-k dominating set of G' back to an independent set of G
    (the reverse direction: exactly one member per clique, each naming an
    original node)."""
    originals = []
    for node in witness:
        kind, data = info.decode(node)
        if kind != "clique":
            raise ValueError(
                f"a size-{info.k} dominating set of G' must sit inside the "
                f"cliques; got {kind} node {node}"
            )
        originals.append(data[1])
    return tuple(sorted(originals))


def is_to_ds_reduction(k: int) -> Reduction:
    """Theorem 10 as a Reduction object."""
    return Reduction(
        name=f"{k}-IS <= {k}-DS",
        source=f"{k}-independent-set",
        target=f"{k}-dominating-set",
        transform=lambda g: is_to_ds_instance(g, k),
        map_back=ds_witness_to_is,
        overhead="O(k^(2 delta + 4)) round factor, (k^2+k+2) n nodes",
        paper_source="Theorem 10 / Figure 2",
    )
