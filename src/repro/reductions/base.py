"""Reduction framework for the fine-grained landscape (Section 7).

The congested clique requires extremely fine-grained reductions: only
``n^o(1)`` blow-up is affordable, and a reduction that multiplies the
node count by ``c`` and makes each original node simulate ``s`` new nodes
turns an ``O(n^d)`` algorithm into an ``O(s^2 (cn)^d)`` one (each
simulated round needs ``s^2`` real rounds to carry the messages of ``s``
nodes over one node's links).  :func:`simulation_overhead` captures the
paper's accounting (e.g. Theorem 10's ``O(k^(2d+4) n^d)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Reduction", "simulation_overhead"]


@dataclass(frozen=True)
class Reduction:
    """An instance transformation with solution mapping.

    ``transform`` maps an instance of the source problem to an instance
    of the target problem; ``map_back`` recovers a source solution from a
    target solution (its second argument is the ``info`` returned by
    ``transform``).
    """

    name: str
    source: str
    target: str
    transform: Callable[..., tuple[Any, Any]]
    map_back: Callable[[Any, Any], Any]
    #: human-readable overhead statement, e.g. "O(k^(2d+4)) factor"
    overhead: str = ""
    paper_source: str = ""

    def __repr__(self) -> str:
        return f"Reduction({self.source} <= {self.target})"


def simulation_overhead(
    nodes_factor: float, per_node_simulated: int, delta: float
) -> float:
    """Round-count factor incurred by simulating the target instance.

    With ``N' = nodes_factor * n`` nodes and each real node simulating
    ``per_node_simulated`` virtual nodes, an ``O(N'^delta)`` algorithm
    costs ``per_node_simulated^2 * nodes_factor^delta`` times ``n^delta``
    real rounds — Theorem 10 instantiates this with
    ``nodes_factor = k^2 + k + 2`` and ``per_node_simulated = O(k^2)``,
    giving the ``O(k^(2 delta + 4))`` factor.
    """
    return (per_node_simulated**2) * (nodes_factor**delta)
