"""k-colouring reduces to maximum independent set (Section 7, [46]).

Replace each vertex ``v`` by ``k`` copies ``v_1..v_k`` forming a clique,
and connect ``v_c`` to ``u_c`` (same colour-slot) whenever ``{v, u}`` is
an edge of ``G``.  The new graph has an independent set of size ``n``
iff ``G`` is k-colourable — and a maximum independent set of size ``n``
reads back as a proper colouring (copy index = colour).  The blow-up is
a factor ``k``, constant for constant ``k``, so
``delta(k-COL) <= delta(MaxIS)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clique.graph import CliqueGraph
from .base import Reduction

__all__ = [
    "ColToIsInstance",
    "col_to_is_instance",
    "is_witness_to_colouring",
    "colouring_to_is_witness",
    "col_to_is_reduction",
]


@dataclass(frozen=True)
class ColToIsInstance:
    n: int
    k: int

    @property
    def num_nodes(self) -> int:
        return self.n * self.k

    def copy_node(self, v: int, colour: int) -> int:
        """G' node id of copy ``colour`` of vertex ``v``."""
        return v * self.k + colour

    def decode(self, node: int) -> tuple[int, int]:
        """Inverse of :meth:`copy_node`: (vertex, colour)."""
        return node // self.k, node % self.k


def col_to_is_instance(
    graph: CliqueGraph, k: int
) -> tuple[CliqueGraph, ColToIsInstance]:
    """Build the k-fold blow-up graph G' (vertex gadgets + colour-slot
    edges)."""
    if k < 1:
        raise ValueError("k must be positive")
    n = graph.n
    info = ColToIsInstance(n=n, k=k)
    N = info.num_nodes
    adj = np.zeros((N, N), dtype=bool)
    for v in range(n):
        # vertex gadget: the k copies form a clique
        for c in range(k):
            for d in range(c + 1, k):
                a, b = info.copy_node(v, c), info.copy_node(v, d)
                adj[a, b] = adj[b, a] = True
    for v, u in graph.edges():
        for c in range(k):
            a, b = info.copy_node(v, c), info.copy_node(u, c)
            adj[a, b] = adj[b, a] = True
    return CliqueGraph(adj), info


def is_witness_to_colouring(
    witness, info: ColToIsInstance
) -> list[int] | None:
    """An independent set of size n in G' picks exactly one copy per
    vertex; the copy indices form a proper colouring of G."""
    if len(witness) != info.n:
        return None
    colours = [-1] * info.n
    for node in witness:
        v, c = info.decode(node)
        if colours[v] != -1:
            return None  # two copies of the same vertex cannot happen
        colours[v] = c
    if any(c == -1 for c in colours):
        return None
    return colours


def colouring_to_is_witness(
    colours, info: ColToIsInstance
) -> tuple[int, ...]:
    """Map a proper colouring to the size-n independent set of G'."""
    return tuple(info.copy_node(v, c) for v, c in enumerate(colours))


def col_to_is_reduction(k: int) -> Reduction:
    """The blow-up reduction as a Reduction object."""
    return Reduction(
        name=f"{k}-COL <= MaxIS",
        source=f"{k}-colouring",
        target="max-independent-set",
        transform=lambda g: col_to_is_instance(g, k),
        map_back=is_witness_to_colouring,
        overhead=f"node blow-up factor {k} (constant)",
        paper_source="Section 7 / Luby [46]",
    )
