"""Matrix-multiplication-flavoured arrows of Figure 1, executably.

* triangle detection <= Boolean MM (trace of A^3 — Censor-Hillel et al.),
* transitive closure <= Boolean MM (log n squarings),
* APSP <= (min,+) MM (log n squarings),
* Boolean MM <= Ring MM (evaluate over the integers, threshold at > 0).

Each helper runs the *distributed* matrix multiplication on the
simulator, so the executions genuinely witness the exponent inequality
``delta(source) <= delta(target)`` including round counts.
"""

from __future__ import annotations

import math

import numpy as np

from ..algorithms.matmul import BOOLEAN, MINPLUS, RING, run_matmul
from ..clique.graph import INF, CliqueGraph
from .base import Reduction

__all__ = [
    "triangle_via_boolean_mm",
    "transitive_closure_via_boolean_mm",
    "apsp_via_minplus_mm",
    "boolean_mm_via_ring_mm",
    "matmul_reductions",
]


def triangle_via_boolean_mm(
    graph: CliqueGraph, scheme: str = "lenzen"
) -> tuple[bool, int]:
    """Triangle detection by two distributed Boolean products:
    ``G`` has a triangle iff ``(A^2 and A)`` has a nonzero entry.
    Returns ``(has_triangle, total_rounds)``."""
    a = graph.adjacency.astype(np.int64)
    a2, result = run_matmul(a, a, BOOLEAN, scheme=scheme)
    has = bool(((a2 > 0) & (a > 0)).any())
    return has, result.rounds


def transitive_closure_via_boolean_mm(
    graph: CliqueGraph, scheme: str = "lenzen"
) -> tuple[np.ndarray, int]:
    """Reachability by ``ceil(log2 n)`` distributed Boolean squarings."""
    n = graph.n
    reach = graph.adjacency.astype(np.int64)
    np.fill_diagonal(reach, 1)
    rounds = 0
    for _ in range(max(1, math.ceil(math.log2(max(2, n))))):
        reach, result = run_matmul(reach, reach, BOOLEAN, scheme=scheme)
        np.fill_diagonal(reach, 1)
        rounds += result.rounds
    return reach.astype(bool), rounds


def apsp_via_minplus_mm(
    graph: CliqueGraph, max_weight: int, scheme: str = "lenzen"
) -> tuple[np.ndarray, int]:
    """APSP by ``ceil(log2 n)`` distributed (min,+) squarings."""
    n = graph.n
    dist = graph.adjacency.astype(np.int64).copy()
    np.fill_diagonal(dist, 0)
    bound = max(1, (n - 1) * max_weight)
    rounds = 0
    for _ in range(max(1, math.ceil(math.log2(max(2, n))))):
        dist, result = run_matmul(
            dist, dist, MINPLUS, max_entry=bound, scheme=scheme
        )
        np.fill_diagonal(dist, 0)
        rounds += result.rounds
    return np.minimum(dist, INF), rounds


def boolean_mm_via_ring_mm(
    a: np.ndarray, b: np.ndarray, scheme: str = "lenzen"
) -> tuple[np.ndarray, int]:
    """Boolean product through the integer ring (threshold at > 0)."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    c, result = run_matmul(a, b, RING, max_entry=1, scheme=scheme)
    return (c > 0), result.rounds


def matmul_reductions() -> list[Reduction]:
    """The matmul-family arrows of Figure 1 as Reduction objects."""
    return [
        Reduction(
            name="triangle <= Boolean MM",
            source="triangle",
            target="boolean-mm",
            transform=lambda g: (g.adjacency, None),
            map_back=lambda c, _info: bool(c.any()),
            overhead="two products, no blow-up",
            paper_source="Censor-Hillel et al. [10]",
        ),
        Reduction(
            name="transitive closure <= Boolean MM",
            source="transitive-closure",
            target="boolean-mm",
            transform=lambda g: (g.adjacency, None),
            map_back=lambda c, _info: c,
            overhead="ceil(log2 n) squarings",
            paper_source="Censor-Hillel et al. [10]",
        ),
        Reduction(
            name="APSP <= (min,+) MM",
            source="apsp-w-d",
            target="minplus-mm",
            transform=lambda g: (g.adjacency, None),
            map_back=lambda d, _info: d,
            overhead="ceil(log2 n) squarings",
            paper_source="Censor-Hillel et al. [10]",
        ),
        Reduction(
            name="Boolean MM <= Ring MM",
            source="boolean-mm",
            target="ring-mm",
            transform=lambda ab: (ab, None),
            map_back=lambda c, _info: c > 0,
            overhead="none",
            paper_source="Censor-Hillel et al. [10]",
        ),
    ]
