"""Boolean MM reduces to (2-eps)-approximate APSP (Dor-Halperin-Zwick [17]).

Given boolean ``n x n`` matrices ``A`` and ``B``, build a weighted
tripartite graph on layers ``X, Y, Z`` (a copy of ``[n]`` each):

* ``x_i -- y_j`` with weight 1 whenever ``A[i, j] = 1``,
* ``y_j -- z_k`` with weight 1 whenever ``B[j, k] = 1``.

Then ``(AB)[i, k] = 1`` iff ``dist(x_i, z_k) = 2``, and otherwise the
distance is at least 4 (X-Z distances are even).  Any ``(2-eps)``-
approximate APSP answer ``d~`` with ``d <= d~ <= (2-eps) d`` therefore
separates the cases by the threshold ``d~ < 4``:

* product 1:  ``d~ <= (2-eps) * 2 < 4``,
* product 0:  ``d~ >= d >= 4``.

This is the reduction that *breaks down* for 2-approximation — the
paper's example of a fine-grained frontier (Section 7): at ``eps = 0``
the yes-side bound becomes exactly 4 and the threshold vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clique.graph import INF, CliqueGraph
from ..problems.reference import apsp_matrix
from .base import Reduction

__all__ = [
    "BmmInstance",
    "bmm_to_apsp_instance",
    "apsp_to_product",
    "bmm_to_apsp_reduction",
    "approximate_apsp",
]


@dataclass(frozen=True)
class BmmInstance:
    n: int

    @property
    def num_nodes(self) -> int:
        return 3 * self.n

    def x(self, i: int) -> int:
        """Layer-X (row) node id."""
        return i

    def y(self, j: int) -> int:
        """Layer-Y (middle) node id."""
        return self.n + j

    def z(self, k: int) -> int:
        """Layer-Z (column) node id."""
        return 2 * self.n + k


def bmm_to_apsp_instance(
    a: np.ndarray, b: np.ndarray
) -> tuple[CliqueGraph, BmmInstance]:
    """Build the weighted tripartite graph encoding the product AB."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n, n):
        raise ValueError("need square matrices of equal size")
    info = BmmInstance(n=n)
    adj = np.full((3 * n, 3 * n), INF, dtype=np.int64)
    np.fill_diagonal(adj, 0)
    for i in range(n):
        for j in range(n):
            if a[i, j]:
                adj[info.x(i), info.y(j)] = adj[info.y(j), info.x(i)] = 1
            if b[i, j]:
                adj[info.y(i), info.z(j)] = adj[info.z(j), info.y(i)] = 1
    return CliqueGraph(adj, weighted=True), info


def apsp_to_product(
    dist: np.ndarray, info: BmmInstance, eps: float = 0.5
) -> np.ndarray:
    """Recover ``AB`` from (possibly ``(2-eps)``-approximate) distances:
    ``(AB)[i,k] = 1`` iff the reported ``x_i``-``z_k`` distance is < 4."""
    if eps <= 0:
        raise ValueError(
            "the Dor et al. reduction needs eps > 0: at 2-approximation "
            "the distance-2 and distance-4 cases are indistinguishable"
        )
    n = info.n
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for k in range(n):
            out[i, k] = dist[info.x(i), info.z(k)] < 4
    return out


def approximate_apsp(
    graph: CliqueGraph, ratio: float, seed: int = 0
) -> np.ndarray:
    """A simulated ``ratio``-approximate APSP oracle: exact distances
    inflated by adversarial per-pair factors in ``[1, ratio)``.  Used to
    demonstrate that the reduction tolerates any valid approximation."""
    rng = np.random.default_rng(seed)
    dist = apsp_matrix(graph).astype(np.float64)
    factors = 1.0 + (ratio - 1.0) * rng.random(dist.shape) * 0.999
    factors = np.maximum(factors, factors.T)  # keep it symmetric
    out = dist * factors
    out[dist >= INF] = INF
    np.fill_diagonal(out, 0)
    return out


def bmm_to_apsp_reduction(eps: float = 0.5) -> Reduction:
    """The Dor et al. reduction as a Reduction object."""
    return Reduction(
        name=f"Boolean MM <= (2-{eps})-approx APSP",
        source="boolean-mm",
        target="apsp-w-ud-2eps",
        transform=bmm_to_apsp_instance,
        map_back=lambda dist, info: apsp_to_product(dist, info, eps),
        overhead="3n nodes, weights in {1}",
        paper_source="Dor, Halperin & Zwick [17]",
    )
