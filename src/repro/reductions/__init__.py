"""Executable reductions — the arrows of Figure 1 with constructions."""

from .base import Reduction, simulation_overhead
from .bmm_to_apsp import (
    BmmInstance,
    approximate_apsp,
    apsp_to_product,
    bmm_to_apsp_instance,
    bmm_to_apsp_reduction,
)
from .col_to_is import (
    ColToIsInstance,
    col_to_is_instance,
    col_to_is_reduction,
    colouring_to_is_witness,
    is_witness_to_colouring,
)
from .is_to_ds import (
    IsToDsInstance,
    ds_witness_to_is,
    is_to_ds_instance,
    is_to_ds_reduction,
    is_witness_to_ds,
)
from .matmul_reductions import (
    apsp_via_minplus_mm,
    boolean_mm_via_ring_mm,
    matmul_reductions,
    transitive_closure_via_boolean_mm,
    triangle_via_boolean_mm,
)

__all__ = [
    "BmmInstance",
    "ColToIsInstance",
    "IsToDsInstance",
    "Reduction",
    "approximate_apsp",
    "apsp_to_product",
    "apsp_via_minplus_mm",
    "bmm_to_apsp_instance",
    "bmm_to_apsp_reduction",
    "boolean_mm_via_ring_mm",
    "col_to_is_instance",
    "col_to_is_reduction",
    "colouring_to_is_witness",
    "ds_witness_to_is",
    "is_to_ds_instance",
    "is_to_ds_reduction",
    "is_witness_to_ds",
    "matmul_reductions",
    "simulation_overhead",
    "transitive_closure_via_boolean_mm",
    "triangle_via_boolean_mm",
]
