"""Decision problems on graphs.

Per Section 3 of the paper, a *decision problem* ``L`` is a family of
graphs; ``G`` is a yes-instance iff ``G in L``.  Problems need not be
closed under isomorphism (they may refer to node identifiers), but must
be centrally computable — here, a Python predicate.

A :class:`DecisionProblem` bundles the predicate with a name and an
optional *certificate finder* used by the nondeterministic machinery
(``NCLIQUE``): for a yes-instance it produces a per-node labelling that a
distributed verifier can check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..clique.graph import CliqueGraph

__all__ = ["DecisionProblem", "complement"]


@dataclass(frozen=True)
class DecisionProblem:
    """A decision problem: a (computable) family of graphs."""

    name: str
    #: Centralised membership predicate.
    predicate: Callable[[CliqueGraph], bool]
    #: Optional human description.
    description: str = ""
    #: Optional certificate finder: ``G -> per-node labels`` for
    #: yes-instances, ``None`` for no-instances.
    certifier: Callable[[CliqueGraph], Any] | None = None

    def contains(self, graph: CliqueGraph) -> bool:
        """Whether ``graph`` is a yes-instance."""
        return bool(self.predicate(graph))

    def __contains__(self, graph: CliqueGraph) -> bool:
        return self.contains(graph)

    def __repr__(self) -> str:
        return f"DecisionProblem({self.name!r})"


def complement(problem: DecisionProblem) -> DecisionProblem:
    """The complement problem (paper Section 3): all graphs not in L."""
    return DecisionProblem(
        name=f"co-{problem.name}",
        predicate=lambda g, _p=problem.predicate: not _p(g),
        description=f"complement of {problem.name}",
    )
