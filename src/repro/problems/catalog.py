"""Catalog of concrete decision problems from the paper.

Section 6.1 lists k-colouring and Hamiltonian path as NP-complete
problems in NCLIQUE(1); Section 7 studies k-IS, k-DS, k-VC, triangle /
k-cycle / subgraph detection.  Each factory returns a
:class:`~repro.problems.base.DecisionProblem` whose predicate is a
centralised reference solver and whose certifier produces the natural
per-node witness labelling used by nondeterministic verifiers.
"""

from __future__ import annotations

from ..clique.graph import CliqueGraph
from . import reference as ref
from .base import DecisionProblem

__all__ = [
    "k_colouring_problem",
    "hamiltonian_path_problem",
    "triangle_problem",
    "k_independent_set_problem",
    "k_dominating_set_problem",
    "k_vertex_cover_problem",
    "k_cycle_problem",
    "connectivity_problem",
    "diameter_at_most_problem",
    "parity_of_edges_problem",
]


def _find_colouring(graph: CliqueGraph, k: int) -> list[int] | None:
    n = graph.n
    colours = [-1] * n

    def backtrack(v: int) -> bool:
        if v == n:
            return True
        used = {colours[u] for u in range(v) if graph.has_edge(u, v)}
        for c in range(k):
            if c not in used:
                colours[v] = c
                if backtrack(v + 1):
                    return True
                colours[v] = -1
        return False

    return list(colours) if backtrack(0) else None


def k_colouring_problem(k: int) -> DecisionProblem:
    """Is the graph properly k-colourable?  (NP-complete for k >= 3.)"""
    return DecisionProblem(
        name=f"{k}-colouring",
        predicate=lambda g: ref.is_k_colourable(g, k),
        description=f"graphs with chromatic number at most {k}",
        certifier=lambda g: _find_colouring(g, k),
    )


def _find_hamiltonian_path(graph: CliqueGraph) -> list[int] | None:
    n = graph.n
    if n == 0:
        return []
    if n == 1:
        return [0]

    def dfs(v: int, visited: list[int]) -> list[int] | None:
        if len(visited) == n:
            return visited
        for u in range(n):
            if u not in visited and graph.has_edge(v, u):
                got = dfs(u, visited + [u])
                if got is not None:
                    return got
        return None

    for start in range(n):
        got = dfs(start, [start])
        if got is not None:
            return got
    return None


def hamiltonian_path_problem() -> DecisionProblem:
    """Does the graph contain a Hamiltonian path?  (NP-complete.)"""
    return DecisionProblem(
        name="hamiltonian-path",
        predicate=ref.has_hamiltonian_path,
        description="graphs containing a Hamiltonian path",
        certifier=_find_hamiltonian_path,
    )


def _find_triangle(graph: CliqueGraph) -> tuple[int, int, int] | None:
    n = graph.n
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v):
                continue
            for w in range(v + 1, n):
                if graph.has_edge(u, w) and graph.has_edge(v, w):
                    return (u, v, w)
    return None


def triangle_problem() -> DecisionProblem:
    """Does the graph contain a triangle?"""
    return DecisionProblem(
        name="triangle",
        predicate=ref.has_triangle,
        description="graphs containing a triangle",
        certifier=_find_triangle,
    )


def _find_set(graph: CliqueGraph, k: int, check) -> tuple[int, ...] | None:
    import itertools

    for s in itertools.combinations(range(graph.n), k):
        if check(graph, s):
            return s
    return None


def k_independent_set_problem(k: int) -> DecisionProblem:
    """Is there an independent set of size k?"""
    return DecisionProblem(
        name=f"{k}-independent-set",
        predicate=lambda g: ref.has_independent_set(g, k),
        description=f"graphs with an independent set of size {k}",
        certifier=lambda g: _find_set(g, k, ref.is_independent_set),
    )


def k_dominating_set_problem(k: int) -> DecisionProblem:
    """Is there a dominating set of size k?"""
    return DecisionProblem(
        name=f"{k}-dominating-set",
        predicate=lambda g: ref.has_dominating_set(g, k),
        description=f"graphs with a dominating set of size {k}",
        certifier=lambda g: _find_set(g, k, ref.is_dominating_set),
    )


def k_vertex_cover_problem(k: int) -> DecisionProblem:
    """Is there a vertex cover of size at most k?"""
    return DecisionProblem(
        name=f"{k}-vertex-cover",
        predicate=lambda g: ref.has_vertex_cover(g, k),
        description=f"graphs with a vertex cover of size {k}",
        certifier=lambda g: _find_set(g, k, ref.is_vertex_cover),
    )


def _find_k_cycle(graph: CliqueGraph, k: int) -> list[int] | None:
    n = graph.n
    for start in range(n):
        def dfs(v: int, path: list[int]) -> list[int] | None:
            if len(path) == k:
                return path if graph.has_edge(v, start) else None
            for u in range(start, n):
                if u not in path and graph.has_edge(v, u):
                    got = dfs(u, path + [u])
                    if got is not None:
                        return got
            return None

        got = dfs(start, [start])
        if got is not None:
            return got
    return None


def k_cycle_problem(k: int) -> DecisionProblem:
    """Is there a simple cycle of length exactly k?"""
    return DecisionProblem(
        name=f"{k}-cycle",
        predicate=lambda g: ref.has_k_cycle(g, k),
        description=f"graphs containing a simple {k}-cycle",
        certifier=lambda g: _find_k_cycle(g, k),
    )


def connectivity_problem() -> DecisionProblem:
    """Is the graph connected?"""

    def connected(g: CliqueGraph) -> bool:
        if g.n == 0:
            return True
        reach = ref.transitive_closure(g.adjacency)
        return bool(reach[0].all())

    return DecisionProblem(
        name="connectivity",
        predicate=connected,
        description="connected graphs",
    )


def diameter_at_most_problem(d: int) -> DecisionProblem:
    """Is every pairwise distance at most d?"""

    def small_diameter(g: CliqueGraph) -> bool:
        dist = ref.apsp_matrix(g)
        return bool((dist <= d).all())

    return DecisionProblem(
        name=f"diameter<={d}",
        predicate=small_diameter,
        description=f"graphs of diameter at most {d}",
    )


def parity_of_edges_problem() -> DecisionProblem:
    """A simple global-parity problem (not isomorphism-closed-friendly but
    easy to decide): does the graph have an odd number of edges?"""
    return DecisionProblem(
        name="odd-edge-count",
        predicate=lambda g: g.num_edges() % 2 == 1,
        description="graphs with an odd number of edges",
    )
