"""Centralised reference solvers (ground truth for tests and benches).

These are straightforward exact algorithms — brute force or via
networkx/scipy — used to validate the distributed implementations.  They
are intentionally simple rather than fast; inputs in tests are small.
"""

from __future__ import annotations

import itertools
from typing import Iterable

import numpy as np

from ..clique.graph import INF, CliqueGraph

__all__ = [
    "is_independent_set",
    "is_dominating_set",
    "is_vertex_cover",
    "has_independent_set",
    "has_dominating_set",
    "has_vertex_cover",
    "max_independent_set_size",
    "min_vertex_cover_size",
    "min_dominating_set_size",
    "is_k_colourable",
    "has_hamiltonian_path",
    "has_triangle",
    "has_k_cycle",
    "has_subgraph",
    "count_triangles",
    "apsp_matrix",
    "sssp_vector",
    "boolean_matmul",
    "minplus_matmul",
    "ring_matmul",
    "transitive_closure",
    "has_k_path",
]


# ---------------------------------------------------------------------------
# set-property checks


def is_independent_set(graph: CliqueGraph, nodes: Iterable[int]) -> bool:
    nodes = list(nodes)
    return all(
        not graph.has_edge(u, v) for u, v in itertools.combinations(nodes, 2)
    )


def is_dominating_set(graph: CliqueGraph, nodes: Iterable[int]) -> bool:
    dom = set(nodes)
    for v in range(graph.n):
        if v in dom:
            continue
        if not any(graph.has_edge(v, u) for u in dom):
            return False
    return True


def is_vertex_cover(graph: CliqueGraph, nodes: Iterable[int]) -> bool:
    cover = set(nodes)
    return all(u in cover or v in cover for u, v in graph.edges())


# ---------------------------------------------------------------------------
# brute-force existence / optimisation


def _subsets_of_size(n: int, k: int):
    return itertools.combinations(range(n), k)


def has_independent_set(graph: CliqueGraph, k: int) -> bool:
    if k == 0:
        return True
    return any(
        is_independent_set(graph, s) for s in _subsets_of_size(graph.n, k)
    )


def has_dominating_set(graph: CliqueGraph, k: int) -> bool:
    if k >= graph.n:
        return True
    return any(
        is_dominating_set(graph, s) for s in _subsets_of_size(graph.n, k)
    )


def has_vertex_cover(graph: CliqueGraph, k: int) -> bool:
    if k >= graph.n:
        return True
    return any(is_vertex_cover(graph, s) for s in _subsets_of_size(graph.n, k))


def max_independent_set_size(graph: CliqueGraph) -> int:
    for k in range(graph.n, -1, -1):
        if has_independent_set(graph, k):
            return k
    return 0


def min_vertex_cover_size(graph: CliqueGraph) -> int:
    for k in range(graph.n + 1):
        if has_vertex_cover(graph, k):
            return k
    return graph.n


def min_dominating_set_size(graph: CliqueGraph) -> int:
    if graph.n == 0:
        return 0
    for k in range(1, graph.n + 1):
        if has_dominating_set(graph, k):
            return k
    return graph.n


def is_k_colourable(graph: CliqueGraph, k: int) -> bool:
    n = graph.n
    if k >= n:
        return True
    adj = graph.adjacency
    colours = [-1] * n
    # order nodes by decreasing degree for faster backtracking
    order = sorted(range(n), key=graph.degree, reverse=True)

    def backtrack(i: int) -> bool:
        if i == n:
            return True
        v = order[i]
        used = {
            colours[u]
            for u in range(n)
            if colours[u] >= 0 and graph.has_edge(u, v)
        }
        for c in range(k):
            if c not in used:
                colours[v] = c
                if backtrack(i + 1):
                    return True
                colours[v] = -1
            # symmetry breaking: a fresh colour class is interchangeable
            if c not in {colours[u] for u in order[:i]}:
                break
        return False

    return backtrack(0)


def has_hamiltonian_path(graph: CliqueGraph) -> bool:
    n = graph.n
    if n <= 1:
        return True
    # Held-Karp style DP over subsets.
    adj = graph.adjacency
    reach = [dict() for _ in range(n)]
    full = (1 << n) - 1
    # dp[mask][v] = path visiting exactly mask, ending at v
    dp = [[False] * n for _ in range(1 << n)]
    for v in range(n):
        dp[1 << v][v] = True
    for mask in range(1 << n):
        for v in range(n):
            if not dp[mask][v]:
                continue
            for u in range(n):
                if mask & (1 << u):
                    continue
                if graph.has_edge(v, u):
                    dp[mask | (1 << u)][u] = True
    return any(dp[full][v] for v in range(n))


# ---------------------------------------------------------------------------
# subgraph detection


def has_triangle(graph: CliqueGraph) -> bool:
    a = graph.adjacency.astype(np.int64)
    return bool(np.trace(a @ a @ a) > 0)


def count_triangles(graph: CliqueGraph) -> int:
    a = graph.adjacency.astype(np.int64)
    return int(np.trace(a @ a @ a) // 6)


def has_k_cycle(graph: CliqueGraph, k: int) -> bool:
    """Is there a simple cycle of length exactly k?"""
    if k < 3:
        raise ValueError("cycles have length >= 3")
    n = graph.n
    for start in range(n):
        # DFS for simple paths of length k-1 returning to start,
        # restricted to nodes >= start to avoid duplicates.
        def dfs(v: int, depth: int, visited: set[int]) -> bool:
            if depth == k - 1:
                return graph.has_edge(v, start)
            for u in range(start, n):
                if u not in visited and graph.has_edge(v, u):
                    visited.add(u)
                    if dfs(u, depth + 1, visited):
                        return True
                    visited.remove(u)
            return False

        if dfs(start, 0, {start}):
            return True
    return False


def has_k_path(graph: CliqueGraph, k: int) -> bool:
    """Is there a simple path on exactly k vertices?"""
    if k <= 1:
        return graph.n >= k
    n = graph.n

    def dfs(v: int, depth: int, visited: set[int]) -> bool:
        if depth == k:
            return True
        for u in range(n):
            if u not in visited and graph.has_edge(v, u):
                visited.add(u)
                if dfs(u, depth + 1, visited):
                    return True
                visited.remove(u)
        return False

    return any(dfs(v, 1, {v}) for v in range(n))


def has_subgraph(graph: CliqueGraph, pattern: CliqueGraph) -> bool:
    """Does ``graph`` contain ``pattern`` as a (not necessarily induced)
    subgraph?  Brute force over injective vertex maps."""
    k = pattern.n
    pattern_edges = list(pattern.edges())
    for mapping in itertools.permutations(range(graph.n), k):
        if all(graph.has_edge(mapping[u], mapping[v]) for u, v in pattern_edges):
            return True
    return False


# ---------------------------------------------------------------------------
# matrices / distances


def boolean_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a.astype(bool) @ b.astype(bool)).astype(bool)


def ring_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) @ b.astype(np.int64)


def minplus_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(min, +) product with INF as the additive identity."""
    a = a.astype(np.int64)
    b = b.astype(np.int64)
    n, m = a.shape[0], b.shape[1]
    out = np.full((n, m), INF, dtype=np.int64)
    for i in range(n):
        sums = a[i][:, None] + b  # (k, m); INF+x may overflow-safely below INF*2
        np.minimum(out[i], sums.min(axis=0), out=out[i])
    np.minimum(out, INF, out=out)
    return out


def transitive_closure(a: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure of a boolean adjacency matrix."""
    n = a.shape[0]
    reach = a.astype(bool) | np.eye(n, dtype=bool)
    prev = None
    while prev is None or not np.array_equal(reach, prev):
        prev = reach
        reach = boolean_matmul(reach, reach) | reach
    return reach


def apsp_matrix(graph: CliqueGraph) -> np.ndarray:
    """All-pairs shortest path distances; INF when unreachable."""
    n = graph.n
    if graph.weighted:
        dist = graph.adjacency.astype(np.int64).copy()
    else:
        dist = np.where(graph.adjacency, 1, INF).astype(np.int64)
    np.fill_diagonal(dist, 0)
    for k in range(n):
        dist = np.minimum(dist, dist[:, k][:, None] + dist[k, :][None, :])
        np.minimum(dist, INF, out=dist)
    return dist


def sssp_vector(graph: CliqueGraph, source: int) -> np.ndarray:
    return apsp_matrix(graph)[source]
