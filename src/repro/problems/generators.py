"""Seeded graph workload generators.

All generators take an explicit seed (or ``numpy.random.Generator``) so
experiments are reproducible.  Planted-instance generators return both
the graph and the planted witness.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..clique.graph import CliqueGraph

__all__ = [
    "rng_from",
    "random_graph",
    "random_weighted_graph",
    "random_directed_graph",
    "planted_independent_set",
    "planted_dominating_set",
    "planted_vertex_cover",
    "planted_colouring",
    "planted_hamiltonian_path",
    "planted_k_cycle",
    "all_graphs",
    "random_bits",
]


def rng_from(seed) -> np.random.Generator:
    """Coerce a seed (or an existing Generator) to a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_graph(n: int, p: float, seed=0) -> CliqueGraph:
    """Erdős–Rényi G(n, p), undirected, unweighted."""
    rng = rng_from(seed)
    upper = rng.random((n, n)) < p
    adj = np.triu(upper, 1)
    adj = adj | adj.T
    return CliqueGraph(adj)


def random_weighted_graph(
    n: int, p: float, max_weight: int = 100, seed=0
) -> CliqueGraph:
    """G(n, p) with uniform integer weights in [1, max_weight]."""
    rng = rng_from(seed)
    base = random_graph(n, p, rng)
    weights = rng.integers(1, max_weight + 1, size=(n, n))
    weights = np.triu(weights, 1)
    weights = weights + weights.T
    from ..clique.graph import INF

    adj = np.where(base.adjacency, weights, INF).astype(np.int64)
    np.fill_diagonal(adj, 0)
    return CliqueGraph(adj, weighted=True)


def random_directed_graph(n: int, p: float, seed=0) -> CliqueGraph:
    """Directed G(n, p): each arc present independently."""
    rng = rng_from(seed)
    adj = rng.random((n, n)) < p
    np.fill_diagonal(adj, False)
    return CliqueGraph(adj, directed=True)


def planted_independent_set(
    n: int, k: int, p: float = 0.5, seed=0
) -> tuple[CliqueGraph, list[int]]:
    """G(n,p) with a planted independent set of size k (edges inside the
    planted set removed)."""
    rng = rng_from(seed)
    g = random_graph(n, p, rng)
    planted = sorted(rng.choice(n, size=k, replace=False).tolist())
    adj = g.adjacency.copy()
    for u, v in itertools.combinations(planted, 2):
        adj[u, v] = adj[v, u] = False
    return CliqueGraph(adj), planted


def planted_dominating_set(
    n: int, k: int, p: float = 0.2, seed=0
) -> tuple[CliqueGraph, list[int]]:
    """G(n,p) plus edges guaranteeing a planted dominating set of size k:
    every node outside the set is attached to a random planted node."""
    rng = rng_from(seed)
    g = random_graph(n, p, rng)
    planted = sorted(rng.choice(n, size=k, replace=False).tolist())
    adj = g.adjacency.copy()
    for v in range(n):
        if v in planted:
            continue
        u = planted[int(rng.integers(len(planted)))]
        adj[u, v] = adj[v, u] = True
    return CliqueGraph(adj), planted


def planted_vertex_cover(
    n: int, k: int, p: float = 0.5, seed=0
) -> tuple[CliqueGraph, list[int]]:
    """A graph whose edges all touch a planted set of k nodes (so a vertex
    cover of size k exists); edge density p among the candidate pairs."""
    rng = rng_from(seed)
    cover = sorted(rng.choice(n, size=k, replace=False).tolist())
    cover_set = set(cover)
    adj = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v in range(u + 1, n):
            if (u in cover_set or v in cover_set) and rng.random() < p:
                adj[u, v] = adj[v, u] = True
    return CliqueGraph(adj), cover


def planted_colouring(
    n: int, k: int, p: float = 0.5, seed=0
) -> tuple[CliqueGraph, list[int]]:
    """A k-colourable graph: nodes get random colours, edges only between
    colour classes with probability p.  Returns (graph, colours)."""
    rng = rng_from(seed)
    colours = rng.integers(0, k, size=n).tolist()
    adj = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v in range(u + 1, n):
            if colours[u] != colours[v] and rng.random() < p:
                adj[u, v] = adj[v, u] = True
    return CliqueGraph(adj), colours


def planted_hamiltonian_path(
    n: int, p: float = 0.2, seed=0
) -> tuple[CliqueGraph, list[int]]:
    """G(n,p) plus a random Hamiltonian path.  Returns (graph, path)."""
    rng = rng_from(seed)
    g = random_graph(n, p, rng)
    order = rng.permutation(n).tolist()
    adj = g.adjacency.copy()
    for a, b in zip(order, order[1:]):
        adj[a, b] = adj[b, a] = True
    return CliqueGraph(adj), order


def planted_k_cycle(
    n: int, k: int, p: float = 0.1, seed=0
) -> tuple[CliqueGraph, list[int]]:
    """G(n,p) plus a planted simple cycle on k random nodes."""
    rng = rng_from(seed)
    g = random_graph(n, p, rng)
    cyc = rng.choice(n, size=k, replace=False).tolist()
    adj = g.adjacency.copy()
    for a, b in zip(cyc, cyc[1:] + cyc[:1]):
        adj[a, b] = adj[b, a] = True
    return CliqueGraph(adj), cyc


def all_graphs(n: int):
    """Iterate over all 2^(n(n-1)/2) undirected graphs on n nodes.

    Only sensible for n <= 5; used by exhaustive miniature experiments.
    """
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask & (1 << i)]
        yield CliqueGraph.from_edges(n, edges)


def random_bits(count: int, seed=0) -> list[int]:
    """A seeded list of ``count`` uniform bits."""
    rng = rng_from(seed)
    return rng.integers(0, 2, size=count).tolist()
