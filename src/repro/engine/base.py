"""Execution-engine abstractions.

The simulator separates *semantics* from *execution*: a
:class:`~repro.clique.network.CongestedClique` owns the model parameters
(``n``, bandwidth, round limit, model variant) while an :class:`Engine`
owns the mechanics of advancing the node generators and delivering
messages.  ``CongestedClique.run(..., engine=...)`` accepts an engine
name, an :class:`Engine` instance, or ``None`` (the reference backend).

Every backend must be observationally equivalent to the reference
backend on valid programs — same ``RunResult.outputs``, same ``rounds``,
same bit accounting.  :mod:`repro.engine.diff` enforces this across the
algorithm catalog.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Generator, Sequence

from ..clique.errors import CliqueError
from ..clique.network import NodeProgram, RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..clique.network import CongestedClique
    from ..clique.node import Node

__all__ = [
    "CHECK_LEVELS",
    "ENGINES",
    "Engine",
    "canonical_check",
    "engine_names",
    "register_engine",
    "resolve_engine",
    "spawn_generators",
]

#: The one validation vocabulary, shared by every backend:
#: ``"full"`` reproduces every model check (addressing, duplicates,
#: empty payloads, bandwidth), ``"bandwidth"`` keeps only the per-link
#: bit-budget enforcement the paper's cost model is built on, and
#: ``"off"`` trusts the program entirely.
CHECK_LEVELS = ("full", "bandwidth", "off")

#: Registry of engine names to engine classes (see :func:`register_engine`).
ENGINES: dict[str, type["Engine"]] = {}

#: Engines that live *above* this package (the service layer) and are
#: imported on first resolve, keeping the engine -> service layering
#: acyclic: ``repro.service`` imports ``repro.engine`` freely, while the
#: engine registry only learns the module path of the lazy backend.
_LAZY_ENGINES: dict[str, str] = {"sharded": "repro.service.kernel"}


def canonical_check(spec: Any) -> str | None:
    """Normalise a ``check=`` argument to the canonical vocabulary.

    ``None`` passes through (meaning "the engine's default").  The old
    boolean spelling (``True``/``False`` for validation on/off) is
    mapped to ``"full"``/``"off"`` with a :class:`DeprecationWarning`.
    """
    if spec is None:
        return None
    if spec is True or spec is False:
        mapped = "full" if spec else "off"
        warnings.warn(
            f"check={spec!r} is deprecated; use check={mapped!r} "
            f"(one of {CHECK_LEVELS})",
            DeprecationWarning,
            stacklevel=3,
        )
        return mapped
    if spec in CHECK_LEVELS:
        return spec
    raise CliqueError(f"check must be one of {CHECK_LEVELS}, got {spec!r}")


def engine_names() -> list[str]:
    """Sorted names of every known backend, lazily-registered ones included.

    This is the single source of truth for user-facing engine choices
    (``repro run/sweep/stats/trace --engine``): a backend registered via
    :func:`register_engine` or listed in :data:`_LAZY_ENGINES` appears
    here without any CLI change.
    """
    return sorted(set(ENGINES) | set(_LAZY_ENGINES))


def register_engine(cls: type["Engine"]) -> type["Engine"]:
    """Class decorator: register an engine class under its ``name``."""
    if not cls.name or cls.name in ENGINES:
        raise CliqueError(f"engine name {cls.name!r} is empty or already taken")
    ENGINES[cls.name] = cls
    return cls


def resolve_engine(
    spec: "str | Engine | None", check: Any = None, shards: "int | None" = None
) -> "Engine":
    """Turn an ``engine=`` argument into an :class:`Engine` instance.

    ``None`` means the reference backend; a string is looked up in
    :data:`ENGINES` and instantiated; an :class:`Engine` instance passes
    through unchanged.  ``check`` (one of :data:`CHECK_LEVELS`) selects
    the validation level for name/``None`` specs; combining it with an
    engine *instance* whose configured level differs is a conflict and
    raises :class:`~repro.clique.errors.CliqueError`.  ``shards``
    requests shard-parallel execution (``0`` = one shard per available
    core) and follows the same rules: it configures name/``None`` specs
    and must agree with a pre-built instance; an engine without a
    ``shards`` knob rejects it.
    """
    check = canonical_check(check)
    if spec is None:
        spec = "reference"
    if isinstance(spec, Engine):
        if check is not None and getattr(spec, "check", check) != check:
            raise CliqueError(
                f"conflicting validation levels: engine {spec!r} is "
                f"configured with check={spec.check!r} but the run asked "
                f"for check={check!r}"
            )
        if shards is not None:
            if not hasattr(spec, "shards"):
                raise CliqueError(
                    f"engine {spec!r} does not support shards; "
                    f"use engine='columnar' for shard-parallel array "
                    f"programs"
                )
            if spec.shards is not None and spec.shards != shards:
                raise CliqueError(
                    f"conflicting shard counts: engine {spec!r} is "
                    f"configured with shards={spec.shards!r} but the run "
                    f"asked for shards={shards!r}"
                )
            if spec.shards is None:
                raise CliqueError(
                    f"engine instance {spec!r} was built without shards; "
                    f"pass shards={shards!r} to its constructor or spell "
                    f"the engine by name"
                )
        return spec
    if isinstance(spec, str):
        if spec not in ENGINES and spec in _LAZY_ENGINES:
            import importlib

            importlib.import_module(_LAZY_ENGINES[spec])
        try:
            cls = ENGINES[spec]
        except KeyError:
            from ..clique.errors import did_you_mean

            known = engine_names()
            hint = did_you_mean(spec, known)
            raise CliqueError(
                f"unknown engine {spec!r}; known engines: {known}{hint}"
            ) from None
        kwargs: dict = {}
        if check is not None:
            kwargs["check"] = check
        if shards is not None:
            kwargs["shards"] = shards
        try:
            return cls(**kwargs)
        except TypeError:
            if shards is not None:
                raise CliqueError(
                    f"engine {spec!r} does not support shards; "
                    f"use engine='columnar' for shard-parallel array "
                    f"programs"
                ) from None
            raise
    raise CliqueError(
        f"engine must be a name, an Engine instance or None, got {spec!r}"
    )


def spawn_generators(
    program: NodeProgram, nodes: Sequence["Node"]
) -> dict[int, Generator[None, None, Any]]:
    """Instantiate one generator per node, validating the program shape."""
    gens: dict[int, Generator[None, None, Any]] = {}
    for v, node in enumerate(nodes):
        gen = program(node)
        if not hasattr(gen, "send"):
            raise CliqueError(
                "node program must be a generator function "
                "(use 'yield' for round boundaries)"
            )
        gens[v] = gen
    return gens


class Engine(ABC):
    """One execution backend for congested clique node programs.

    Subclasses implement :meth:`execute`; the clique object passed in
    carries all model parameters.  Engines are cheap, stateless-between-
    runs objects, safe to reuse and to pickle (the sweep runner ships
    them to worker processes).
    """

    #: Registry key; subclasses override.
    name = "abstract"

    @abstractmethod
    def execute(
        self,
        clique: "CongestedClique",
        program: NodeProgram,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        *,
        observer: Any = None,
        transcripts: bool | None = None,
        fault_plan: Any = None,
    ) -> RunResult:
        """Run ``program`` on all nodes of ``clique`` and return the result.

        ``inputs`` and ``auxes`` are already resolved to one value per
        node (see ``repro.clique.network._resolve_per_node``).

        ``observer`` follows :func:`repro.obs.resolve_observer` semantics
        (``None`` attaches the default metrics collector, ``False`` /
        ``"off"`` disables observation); ``transcripts`` overrides the
        clique's ``record_transcripts`` setting when not ``None``.

        ``fault_plan`` follows :func:`repro.faults.resolve_fault_plan`
        semantics (``None``, a :class:`~repro.faults.FaultPlan`, or a
        spec string); when given, the engine consults the plan at
        delivery time for every bandwidth-checked message and reports
        injected faults through the observer.  The privileged bulk
        channel is exempt.
        """

    def describe(self) -> dict:
        """JSON-able engine configuration (used in cache keys and reports)."""
        return {"engine": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"
