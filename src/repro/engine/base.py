"""Execution-engine abstractions.

The simulator separates *semantics* from *execution*: a
:class:`~repro.clique.network.CongestedClique` owns the model parameters
(``n``, bandwidth, round limit, model variant) while an :class:`Engine`
owns the mechanics of advancing the node generators and delivering
messages.  ``CongestedClique.run(..., engine=...)`` accepts an engine
name, an :class:`Engine` instance, or ``None`` (the reference backend).

Every backend must be observationally equivalent to the reference
backend on valid programs — same ``RunResult.outputs``, same ``rounds``,
same bit accounting.  :mod:`repro.engine.diff` enforces this across the
algorithm catalog.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Generator, Sequence

from ..clique.errors import CliqueError
from ..clique.network import NodeProgram, RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..clique.network import CongestedClique
    from ..clique.node import Node

__all__ = ["ENGINES", "Engine", "register_engine", "resolve_engine", "spawn_generators"]

#: Registry of engine names to engine classes (see :func:`register_engine`).
ENGINES: dict[str, type["Engine"]] = {}


def register_engine(cls: type["Engine"]) -> type["Engine"]:
    """Class decorator: register an engine class under its ``name``."""
    if not cls.name or cls.name in ENGINES:
        raise CliqueError(f"engine name {cls.name!r} is empty or already taken")
    ENGINES[cls.name] = cls
    return cls


def resolve_engine(spec: "str | Engine | None") -> "Engine":
    """Turn an ``engine=`` argument into an :class:`Engine` instance.

    ``None`` means the reference backend; a string is looked up in
    :data:`ENGINES` and instantiated with defaults; an :class:`Engine`
    instance passes through unchanged.
    """
    if spec is None:
        spec = "reference"
    if isinstance(spec, Engine):
        return spec
    if isinstance(spec, str):
        try:
            cls = ENGINES[spec]
        except KeyError:
            raise CliqueError(
                f"unknown engine {spec!r}; known engines: {sorted(ENGINES)}"
            ) from None
        return cls()
    raise CliqueError(
        f"engine must be a name, an Engine instance or None, got {spec!r}"
    )


def spawn_generators(
    program: NodeProgram, nodes: Sequence["Node"]
) -> dict[int, Generator[None, None, Any]]:
    """Instantiate one generator per node, validating the program shape."""
    gens: dict[int, Generator[None, None, Any]] = {}
    for v, node in enumerate(nodes):
        gen = program(node)
        if not hasattr(gen, "send"):
            raise CliqueError(
                "node program must be a generator function "
                "(use 'yield' for round boundaries)"
            )
        gens[v] = gen
    return gens


class Engine(ABC):
    """One execution backend for congested clique node programs.

    Subclasses implement :meth:`execute`; the clique object passed in
    carries all model parameters.  Engines are cheap, stateless-between-
    runs objects, safe to reuse and to pickle (the sweep runner ships
    them to worker processes).
    """

    #: Registry key; subclasses override.
    name = "abstract"

    @abstractmethod
    def execute(
        self,
        clique: "CongestedClique",
        program: NodeProgram,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
    ) -> RunResult:
        """Run ``program`` on all nodes of ``clique`` and return the result.

        ``inputs`` and ``auxes`` are already resolved to one value per
        node (see ``repro.clique.network._resolve_per_node``).
        """

    def describe(self) -> dict:
        """JSON-able engine configuration (used in cache keys and reports)."""
        return {"engine": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"
