"""The fast execution backend.

Same ``NodeProgram`` semantics as the reference engine, restructured for
throughput:

* **Batched message delivery.**  Each node queues sends into a single
  flat outbox list per round instead of a per-pair dict; a broadcast
  (``send_to_all``) is one list entry expanded at delivery time, and the
  per-node sent/received bit accounting for broadcasts is computed in
  bulk rather than per message.
* **Optional validation.**  ``check="full"`` reproduces every model
  check of the reference engine (addressing, duplicates, empty
  payloads, bandwidth); ``check="bandwidth"`` (the default) keeps only
  the per-link bit-budget enforcement — the check the paper's cost
  model is built on; ``check="off"`` trusts the program entirely.
* **Transcripts off by default.**  Recording is only enabled when the
  clique (or the engine) explicitly asks for it; the hot delivery loop
  carries no per-message recording branches otherwise.

The fast engine supports the plain congested clique only; the
broadcast-only variant and restricted CONGEST topologies need the
per-message validation of the reference engine and raise
:class:`~repro.clique.errors.CliqueError` here.  Observational
equivalence with the reference backend on the algorithm catalog is
enforced by :mod:`repro.engine.diff`.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

import numpy as np

from ..clique.bits import BitString
from ..clique.errors import (
    BandwidthExceeded,
    CliqueError,
    DuplicateMessage,
    ProtocolViolation,
    RoundLimitExceeded,
)
from ..clique.network import NodeProgram, RunResult
from ..clique.node import Node
from ..clique.transcript import RoundRecord, Transcript
from ..faults import FaultInjector, resolve_fault_plan
from ..obs import MetricsCollector, RoundStats, resolve_observer
from ..obs.profile import PhaseTimer
from .base import (
    CHECK_LEVELS,
    Engine,
    canonical_check,
    register_engine,
    spawn_generators,
)

__all__ = ["CHECK_LEVELS", "FastEngine"]

#: Flat-outbox destination marker for a broadcast entry.
_BROADCAST = -1


class _FastNode(Node):
    """Node with a flat outbox and validation chosen by the engine.

    ``_flat_out`` holds ``(dst, payload)`` entries; ``dst == -1`` marks
    a broadcast to all other nodes.  ``_flat_bulk`` is the privileged
    cost-model router channel (see ``Node._bulk_send``).
    """

    __slots__ = ("_check", "_flat_out", "_flat_bulk", "_sent_to")

    def __init__(
        self,
        node_id: int,
        n: int,
        bandwidth: int,
        node_input: Any,
        aux: Any,
        check: str,
    ) -> None:
        super().__init__(node_id, n, bandwidth, node_input, aux)
        self._check = check
        self._flat_out: list[tuple[int, BitString]] = []
        self._flat_bulk: list[tuple[int, BitString]] = []
        self._sent_to: set[int] = set()

    def send(self, dst: int, payload: BitString) -> None:
        """Queue one message for ``dst`` (validation per the check level)."""
        check = self._check
        if check == "bandwidth":
            if len(payload) > self.bandwidth:
                raise BandwidthExceeded(self.id, dst, len(payload), self.bandwidth)
        elif check == "full":
            self._check_can_send(dst)
            if len(payload) > self.bandwidth:
                raise BandwidthExceeded(self.id, dst, len(payload), self.bandwidth)
            if len(payload) == 0:
                raise ProtocolViolation(
                    f"node {self.id} sent an empty message to {dst}; "
                    f"omit the send instead"
                )
            if dst in self._sent_to:
                raise DuplicateMessage(self.id, dst)
            self._sent_to.add(dst)
        self._flat_out.append((dst, payload))

    def send_to_all(self, payload: BitString) -> None:
        """Queue the same message for every other node as one flat entry."""
        if self.n == 1:
            return
        check = self._check
        if check == "bandwidth":
            if len(payload) > self.bandwidth:
                raise BandwidthExceeded(
                    self.id,
                    0 if self.id != 0 else 1,
                    len(payload),
                    self.bandwidth,
                )
        elif check == "full":
            self._check_can_send(0 if self.id != 0 else 1)
            if len(payload) > self.bandwidth:
                raise BandwidthExceeded(
                    self.id,
                    0 if self.id != 0 else 1,
                    len(payload),
                    self.bandwidth,
                )
            if len(payload) == 0:
                raise ProtocolViolation(
                    f"node {self.id} sent an empty message in a broadcast; "
                    f"omit the send instead"
                )
            for dst in range(self.n):
                if dst != self.id and dst in self._sent_to:
                    raise DuplicateMessage(self.id, dst)
            for dst in range(self.n):
                if dst != self.id:
                    self._sent_to.add(dst)
        self._flat_out.append((_BROADCAST, payload))

    def _bulk_send(self, dst: int, payload: BitString) -> None:
        """Privileged unbounded send for the cost-model router."""
        if self._check == "full":
            self._check_can_send(dst)
            if dst in self._sent_to:
                raise DuplicateMessage(self.id, dst)
            self._sent_to.add(dst)
        if len(payload) == 0:
            return
        self._flat_bulk.append((dst, payload))


@register_engine
class FastEngine(Engine):
    """Performance backend with batched delivery and optional validation.

    Parameters
    ----------
    check:
        Validation level: ``"full"``, ``"bandwidth"`` (default) or
        ``"off"`` (see the module docstring).
    record_transcripts:
        Force transcript recording even when the clique does not request
        it.  Defaults to ``False``; recording is also enabled when the
        clique was built with ``record_transcripts=True``.
    shuffle_seed:
        If given, deliver each round's messages in a pseudo-random
        order derived from this seed.  Message delivery in the model is
        an unordered set, so results must be invariant under this
        permutation — the property the hypothesis tests check.
    """

    name = "fast"

    def __init__(
        self,
        check: str = "bandwidth",
        record_transcripts: bool = False,
        shuffle_seed: int | None = None,
    ) -> None:
        check = canonical_check(check)
        if check not in CHECK_LEVELS:
            raise CliqueError(f"check must be one of {CHECK_LEVELS}, got {check!r}")
        self.check = check
        self.record_transcripts = record_transcripts
        self.shuffle_seed = shuffle_seed

    def describe(self) -> dict:
        """Engine configuration (cache key component)."""
        return {
            "engine": self.name,
            "check": self.check,
            "record_transcripts": self.record_transcripts,
            "shuffle_seed": self.shuffle_seed,
        }

    def execute(
        self,
        clique,
        program: NodeProgram,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        *,
        observer: Any = None,
        transcripts: bool | None = None,
        fault_plan: Any = None,
    ) -> RunResult:
        """Run ``program`` on all nodes with batched message delivery."""
        if clique.broadcast_only or clique.topology is not None:
            raise CliqueError(
                "the fast engine supports the plain congested clique only; "
                "use the reference engine for broadcast-only cliques or "
                "CONGEST topologies"
            )
        n = clique.n
        check = self.check
        full_check = check == "full"
        record = (
            transcripts
            if transcripts is not None
            else (self.record_transcripts or clique.record_transcripts)
        )
        obs = resolve_observer(observer)
        plan = resolve_fault_plan(fault_plan)
        injector = (FaultInjector(plan, n, obs) if plan is not None else None)
        per_message = obs is not None and obs.wants_messages
        track_halts = obs is not None and obs.wants_halts
        timer = (PhaseTimer() if obs is not None and obs.wants_timing else None)
        if timer is not None:
            timer.start("spawn")
        rng = (
            random.Random(self.shuffle_seed)
            if self.shuffle_seed is not None
            else None
        )
        nodes = [
            _FastNode(v, n, clique.bandwidth, inputs[v], auxes[v], check)
            for v in range(n)
        ]
        gens = spawn_generators(program, nodes)
        outputs: dict[int, Any] = {}
        records: list[list[RoundRecord]] = [[] for _ in range(n)]

        live = set(range(n))
        rounds = 0
        total_bits = 0
        bulk_bits = 0
        sent_bits = [0] * n
        received_bits = [0] * n
        # The default collector computes the same per-node totals the
        # engine needs for RunResult (vectorised at run end); reuse them
        # instead of keeping a duplicate per-round log.  Custom
        # observers cannot be trusted for engine accounting.
        reuse_totals = type(obs) is MetricsCollector
        round_sent_log: list[list[int]] = []
        round_received_log: list[list[int]] = []
        intern: dict[BitString, BitString] = {}
        if obs is not None:
            obs.on_run_start(n=n, bandwidth=clique.bandwidth, engine=self.name)

        def advance(v: int) -> None:
            try:
                next(gens[v])
            except StopIteration as stop:
                outputs[v] = stop.value
                nodes[v]._halted = True
                live.discard(v)
                if track_halts:
                    obs.on_halt(round=rounds, node=v)

        # Initial local-computation phase (before the first round).
        if timer is not None:
            timer.start("advance")
        for v in range(n):
            advance(v)
        if timer is not None:
            obs.on_phases(round=0, seconds=timer.flush())

        while True:
            if not live and not any(
                node._flat_out or node._flat_bulk for node in nodes
            ):
                break
            if rounds >= clique.max_rounds:
                raise RoundLimitExceeded(clique.max_rounds)
            this_round = rounds + 1

            if timer is not None:
                timer.start("deliver")
            inboxes: list[dict[int, BitString]] = [{} for _ in range(n)]
            # When an observer is attached, deliver into round-local
            # accounting arrays so per-round deltas come for free; the
            # unobserved hot path accumulates in place.
            if obs is not None:
                round_sent = [0] * n
                round_received = [0] * n
            else:
                round_sent = sent_bits
                round_received = received_bits
            if injector is not None:
                # Duplicate carryover lands first so a genuine message
                # on the same link wins the inbox slot.
                injector.inject_pending(this_round, inboxes, round_received)
            if rng is not None or record or per_message or injector is not None:
                sent_records, bits = self._deliver_explicit(
                    nodes,
                    inboxes,
                    rng,
                    record,
                    round_sent,
                    round_received,
                    obs if per_message else None,
                    this_round,
                    injector,
                )
            else:
                sent_records = None
                bits = self._deliver_batched(
                    nodes, inboxes, round_sent, round_received, intern
                )
            total_bits += bits[0]
            bulk_bits += bits[1]
            if full_check:
                for node in nodes:
                    node._sent_to.clear()
            rounds = this_round
            if obs is not None:
                # Totals are summed once at run end (numpy column sum)
                # instead of per round, keeping the observed path close
                # to the unobserved one.
                if not reuse_totals:
                    round_sent_log.append(round_sent)
                    round_received_log.append(round_received)
                # Positional construction: the dataclass ctor is ~2x
                # faster without keyword matching, and this runs once
                # per round on the observed hot path.  Field order is
                # (round, unicast, broadcast, bulk, message_bits,
                # bulk_bits, sent_bits, received_bits).
                obs.on_round(
                    RoundStats(
                        this_round,
                        bits[2],
                        bits[3],
                        bits[4],
                        bits[0],
                        bits[1],
                        round_sent,
                        round_received,
                    )
                )

            for v in range(n):
                nodes[v]._inbox = inboxes[v]
                nodes[v]._round = rounds
                if record:
                    records[v].append(
                        RoundRecord(sent=sent_records[v], received=dict(inboxes[v]))
                    )

            if timer is not None:
                timer.start("advance")
            for v in sorted(live):
                advance(v)
            if timer is not None:
                obs.on_phases(round=this_round, seconds=timer.flush())

        out_transcripts = None
        if record:
            out_transcripts = tuple(
                Transcript(node=v, n=n, rounds=tuple(records[v]))
                for v in range(n)
            )
        counters = tuple(dict(nodes[v].counters) for v in range(n))
        metrics = None
        if obs is not None:
            if round_sent_log:
                try:
                    sent_bits = (
                        np.asarray(round_sent_log, dtype=np.int64)
                        .sum(axis=0)
                        .tolist()
                    )
                    received_bits = (
                        np.asarray(round_received_log, dtype=np.int64)
                        .sum(axis=0)
                        .tolist()
                    )
                except OverflowError:  # pragma: no cover - >int64 bits
                    for row in round_sent_log:
                        sent_bits = [a + b for a, b in zip(sent_bits, row)]
                    for row in round_received_log:
                        received_bits = [
                            a + b for a, b in zip(received_bits, row)
                        ]
            obs.on_run_end(rounds=rounds, counters=counters)
            metrics = obs.run_metrics()
            if reuse_totals and metrics is not None and rounds:
                sent_bits = list(metrics.sent_bits)
                received_bits = list(metrics.received_bits)
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_message_bits=total_bits,
            bulk_bits=bulk_bits,
            sent_bits=tuple(sent_bits),
            received_bits=tuple(received_bits),
            counters=counters,
            transcripts=out_transcripts,
            metrics=metrics,
        )

    @staticmethod
    def _deliver_batched(
        nodes: list[_FastNode],
        inboxes: list[dict[int, BitString]],
        sent_bits: list[int],
        received_bits: list[int],
        intern: dict[BitString, BitString],
    ) -> tuple[int, int, int, int, int]:
        """Hot path: drain all flat outboxes into the inboxes.

        A sender whose round consists of exactly one broadcast — the
        dominant shape in the catalog — lands in a shared
        ``{sender: payload}`` bucket; each receiver then gets a C-speed
        ``dict`` copy of that bucket (minus its own slot, plus any
        directly-stored unicast/bulk slots) instead of ``n * (n - 1)``
        interpreted per-recipient stores.  Mixed outboxes fall back to
        explicit expansion with the same accounting.  Small repeated
        broadcast payloads are interned so identical bit strings share
        one object (and one cached hash) across senders and rounds.

        Returns ``(message_bits, bulk_bits, unicast_messages,
        broadcast_messages, bulk_messages)`` where broadcast messages
        are counted per recipient.
        """
        n = len(nodes)
        total_bits = 0
        bulk_bits = 0
        unicast_msgs = 0
        broadcast_msgs = 0
        bulk_msgs = 0
        base: dict[int, BitString] = {}
        base_bits = 0
        mixed_total = 0
        mixed_sent: list[int] | None = None
        for v, node in enumerate(nodes):
            out = node._flat_out
            if out:
                if len(out) == 1 and out[0][0] == _BROADCAST:
                    payload = out[0][1]
                    plen = len(payload)
                    if plen <= 64:
                        payload = intern.setdefault(payload, payload)
                    base[v] = payload
                    base_bits += plen
                    fanned = plen * (n - 1)
                    sent_bits[v] += fanned
                    total_bits += fanned
                    broadcast_msgs += n - 1
                else:
                    sent = 0
                    for dst, payload in out:
                        plen = len(payload)
                        if dst == _BROADCAST:
                            for u in range(v):
                                inboxes[u][v] = payload
                            for u in range(v + 1, n):
                                inboxes[u][v] = payload
                            fanned = plen * (n - 1)
                            sent += fanned
                            total_bits += fanned
                            broadcast_msgs += n - 1
                            mixed_total += plen
                            if mixed_sent is None:
                                mixed_sent = [0] * n
                            mixed_sent[v] += plen
                        else:
                            inboxes[dst][v] = payload
                            sent += plen
                            total_bits += plen
                            unicast_msgs += 1
                            received_bits[dst] += plen
                    sent_bits[v] += sent
                node._flat_out = []
            bulk = node._flat_bulk
            if bulk:
                for dst, payload in bulk:
                    plen = len(payload)
                    bulk_bits += plen
                    bulk_msgs += 1
                    sent_bits[v] += plen
                    received_bits[dst] += plen
                    inboxes[dst][v] = payload
                node._flat_bulk = []
        if base:
            base_get = base.get
            for u in range(n):
                merged = dict(base)
                own = base_get(u)
                if own is not None:
                    del merged[u]
                    received_bits[u] += base_bits - len(own)
                else:
                    received_bits[u] += base_bits
                direct = inboxes[u]
                if direct:
                    # Direct slots (unicast/bulk) win over the shared
                    # broadcast bucket, matching explicit-store order.
                    merged.update(direct)
                inboxes[u] = merged
        if mixed_total:
            assert mixed_sent is not None
            for u in range(n):
                received_bits[u] += mixed_total - mixed_sent[u]
        return total_bits, bulk_bits, unicast_msgs, broadcast_msgs, bulk_msgs

    @staticmethod
    def _deliver_explicit(
        nodes: list[_FastNode],
        inboxes: list[dict[int, BitString]],
        rng: random.Random | None,
        record: bool,
        sent_bits: list[int],
        received_bits: list[int],
        obs=None,
        this_round: int = 0,
        injector=None,
    ) -> tuple[list[dict[int, BitString]] | None, tuple[int, int, int, int, int]]:
        """Slow path: expand every message, optionally permute delivery
        order, record transcripts, emit per-message observer events, and
        apply fault injection (bulk messages are exempt — the privileged
        router channel is reliable by fiat).  Message counts and sender
        bits cover every *queued* message; receiver bits and inbox slots
        only the delivered ones.  Returns the per-node sent records
        (``None`` when not recording) and ``(message_bits, bulk_bits,
        unicast_messages, broadcast_messages, bulk_messages)``."""
        n = len(nodes)
        messages: list[tuple[int, int, BitString, str]] = []
        for v, node in enumerate(nodes):
            for dst, payload in node._flat_out:
                if dst == _BROADCAST:
                    for u in range(n):
                        if u != v:
                            messages.append((v, u, payload, "broadcast"))
                else:
                    messages.append((v, dst, payload, "unicast"))
            for dst, payload in node._flat_bulk:
                messages.append((v, dst, payload, "bulk"))
            node._flat_out = []
            node._flat_bulk = []
        if rng is not None:
            rng.shuffle(messages)
        sent_records: list[dict[int, BitString]] | None = (
            [{} for _ in range(n)] if record else None
        )
        total_bits = 0
        bulk_bits = 0
        counts = {"unicast": 0, "broadcast": 0, "bulk": 0}
        for src, dst, payload, kind in messages:
            plen = len(payload)
            if kind == "bulk":
                bulk_bits += plen
            else:
                total_bits += plen
            counts[kind] += 1
            sent_bits[src] += plen
            if injector is not None and kind != "bulk":
                delivered = injector.deliver(this_round, src, dst, payload)
            else:
                delivered = payload
            if delivered is not None:
                received_bits[dst] += plen
                inboxes[dst][src] = delivered
            if sent_records is not None:
                sent_records[src][dst] = payload
            if obs is not None and delivered is not None:
                obs.on_message(round=this_round, src=src, dst=dst, bits=plen, kind=kind)
        if injector is not None:
            # Forged-identity messages land last, into slots no genuine
            # delivery claimed; the sorted buffer makes the outcome
            # independent of the rng delivery permutation above.
            injector.finish_round(this_round, inboxes, received_bits)
        return sent_records, (
            total_bits,
            bulk_bits,
            counts["unicast"],
            counts["broadcast"],
            counts["bulk"],
        )
