"""The reference execution backend.

This is the original lockstep generator engine, extracted verbatim from
``repro.clique.network``: with ``check="full"`` (the default) it
validates every queued message against the model's rules at send time
(one message of at most ``B`` bits per ordered pair per round), supports
transcript recording, the broadcast congested clique, and restricted
CONGEST topologies.  It is the semantic ground truth every other backend
is differentially tested against (:mod:`repro.engine.diff`).

The engine speaks the canonical validation vocabulary
(:data:`repro.engine.base.CHECK_LEVELS`): ``check="bandwidth"`` keeps
only the per-link bit-budget enforcement, ``check="off"`` trusts the
program entirely — matching the fast engine's levels so ``check=`` means
the same thing regardless of backend.

Observability: the engine emits into the :class:`repro.obs.Observer`
protocol — per-round aggregate stats always, per-message events and
phase timings (``spawn`` / ``validate`` / ``deliver`` / ``advance``)
when the attached observer asks for them.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..clique.bits import BitString
from ..clique.errors import (
    BandwidthExceeded,
    ProtocolViolation,
    RoundLimitExceeded,
)
from ..clique.network import NodeProgram, RunResult
from ..clique.node import Node
from ..clique.transcript import RoundRecord, Transcript
from ..faults import FaultInjector, resolve_fault_plan
from ..obs import RoundStats, resolve_observer
from ..obs.profile import PhaseTimer
from .base import (
    CHECK_LEVELS,
    Engine,
    canonical_check,
    register_engine,
    spawn_generators,
)

__all__ = ["ReferenceEngine"]


class _LaxNode(Node):
    """Node with reduced send-time validation for the lower check levels.

    ``check="bandwidth"`` keeps only the bit-budget check; ``check="off"``
    performs no validation at all.  Either way a repeated send to the
    same destination simply overwrites (last write wins), matching the
    fast engine's behaviour at the same level.
    """

    __slots__ = ("_check",)

    def __init__(
        self,
        node_id: int,
        n: int,
        bandwidth: int,
        node_input: Any,
        aux: Any,
        check: str,
    ) -> None:
        super().__init__(node_id, n, bandwidth, node_input, aux)
        self._check = check

    def send(self, dst: int, payload: BitString) -> None:
        if self._check == "bandwidth" and len(payload) > self.bandwidth:
            raise BandwidthExceeded(self.id, dst, len(payload), self.bandwidth)
        self._outbox[dst] = payload

    def send_to_all(self, payload: BitString) -> None:
        if self._check == "bandwidth" and len(payload) > self.bandwidth:
            raise BandwidthExceeded(
                self.id, 0 if self.id != 0 else 1, len(payload), self.bandwidth
            )
        for dst in range(self.n):
            if dst != self.id:
                self._outbox[dst] = payload

    def _bulk_send(self, dst: int, payload: BitString) -> None:
        if len(payload) == 0:
            return
        self._bulk_outbox[dst] = payload


@register_engine
class ReferenceEngine(Engine):
    """Always-validating, transcript-capable lockstep backend.

    The engine advances one generator-coroutine per node in lockstep:

    1. every live node's generator runs until its next ``yield``
       (queueing messages via ``Node.send``) or until it returns (halts
       with an output),
    2. the engine validates every queued message against the model's
       rules and the active model variant (broadcast-only, CONGEST
       topology),
    3. messages are delivered into the recipients' inboxes and the round
       counter increments.

    Parameters
    ----------
    check:
        Validation level (``"full"``, ``"bandwidth"``, ``"off"``); the
        default ``"full"`` is this engine's historical, ground-truth
        behaviour.  Model-variant checks (broadcast-only discipline,
        CONGEST topology edges) are part of the model itself and stay on
        at every level.
    """

    name = "reference"

    def __init__(self, check: str = "full") -> None:
        check = canonical_check(check)
        self.check = "full" if check is None else check
        if self.check not in CHECK_LEVELS:  # pragma: no cover - canonical_check guards
            raise ProtocolViolation(f"check must be one of {CHECK_LEVELS}")

    def describe(self) -> dict:
        """Engine configuration (cache key component)."""
        if self.check == "full":
            # Historical shape: a default-configured reference engine has
            # always described itself as just {"engine": "reference"}, and
            # existing cache entries are keyed on that.
            return {"engine": self.name}
        return {"engine": self.name, "check": self.check}

    def execute(
        self,
        clique,
        program: NodeProgram,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        *,
        observer: Any = None,
        transcripts: bool | None = None,
        fault_plan: Any = None,
    ) -> RunResult:
        """Run ``program`` on all nodes synchronously (see class docs)."""
        n = clique.n
        obs = resolve_observer(observer)
        plan = resolve_fault_plan(fault_plan)
        injector = (FaultInjector(plan, n, obs) if plan is not None else None)
        timing = obs is not None and obs.wants_timing
        per_message = obs is not None and obs.wants_messages
        track_halts = obs is not None and obs.wants_halts
        timer = PhaseTimer() if timing else None
        if timer is not None:
            timer.start("spawn")
        if self.check == "full":
            nodes = [
                Node(v, n, clique.bandwidth, inputs[v], auxes[v])
                for v in range(n)
            ]
        else:
            nodes = [
                _LaxNode(v, n, clique.bandwidth, inputs[v], auxes[v], self.check)
                for v in range(n)
            ]
        gens = spawn_generators(program, nodes)
        outputs: dict[int, Any] = {}
        records: list[list[RoundRecord]] = [[] for _ in range(n)]

        live = set(range(n))
        rounds = 0
        total_bits = 0
        bulk_bits = 0
        sent_bits = [0] * n
        received_bits = [0] * n
        record_transcripts = (
            transcripts
            if transcripts is not None
            else clique.record_transcripts
        )
        if obs is not None:
            obs.on_run_start(n=n, bandwidth=clique.bandwidth, engine=self.name)

        def advance(v: int) -> None:
            try:
                next(gens[v])
            except StopIteration as stop:
                outputs[v] = stop.value
                nodes[v]._halted = True
                live.discard(v)
                if track_halts:
                    obs.on_halt(round=rounds, node=v)

        # Initial local-computation phase (before the first round).
        if timer is not None:
            timer.start("advance")
        for v in range(n):
            advance(v)
        if timer is not None:
            obs.on_phases(round=0, seconds=timer.flush())

        while True:
            pending = any(nodes[v]._outbox or nodes[v]._bulk_outbox for v in range(n))
            if not live and not pending:
                break
            if rounds >= clique.max_rounds:
                raise RoundLimitExceeded(clique.max_rounds)
            this_round = rounds + 1

            # Validate: model-variant rules over all queued messages.
            if timer is not None:
                timer.start("validate")
            for v in range(n):
                node = nodes[v]
                if clique.broadcast_only and node._outbox:
                    payloads = set(node._outbox.values())
                    if len(payloads) != 1 or len(node._outbox) != n - 1:
                        raise ProtocolViolation(
                            f"broadcast congested clique: node {v} must "
                            f"send one identical message to all n-1 peers "
                            f"or stay silent (sent {len(node._outbox)} "
                            f"messages, {len(payloads)} distinct)"
                        )
                if clique.broadcast_only and node._bulk_outbox:
                    raise ProtocolViolation(
                        "broadcast congested clique: the cost-model bulk "
                        "channel is unicast; use direct message passing"
                    )
                if clique.topology is not None:
                    for dst in node._outbox:
                        if not clique.topology.has_edge(v, dst):
                            raise ProtocolViolation(
                                f"CONGEST: node {v} sent to non-neighbour "
                                f"{dst}"
                            )

            # Deliver: swap outboxes into inboxes.
            if timer is not None:
                timer.start("deliver")
            inboxes: list[dict[int, BitString]] = [{} for _ in range(n)]
            sent_records: list[dict[int, BitString]] = [{} for _ in range(n)]
            round_msg_bits = 0
            round_bulk_bits = 0
            round_msgs = 0
            round_bulk_msgs = 0
            round_sent = [0] * n
            round_received = [0] * n
            if injector is not None:
                # Duplicate carryover lands first so a genuine message
                # on the same link wins the inbox slot.
                injector.inject_pending(this_round, inboxes, round_received)
            for v in range(n):
                node = nodes[v]
                for dst, payload in node._outbox.items():
                    plen = len(payload)
                    round_msg_bits += plen
                    round_msgs += 1
                    round_sent[v] += plen
                    delivered = (
                        payload
                        if injector is None
                        else injector.deliver(this_round, v, dst, payload)
                    )
                    if delivered is not None:
                        round_received[dst] += plen
                        inboxes[dst][v] = delivered
                    if record_transcripts:
                        sent_records[v][dst] = payload
                    if per_message and delivered is not None:
                        obs.on_message(
                            round=this_round,
                            src=v,
                            dst=dst,
                            bits=plen,
                            kind="unicast",
                        )
                for dst, payload in node._bulk_outbox.items():
                    plen = len(payload)
                    round_bulk_bits += plen
                    round_bulk_msgs += 1
                    round_sent[v] += plen
                    round_received[dst] += plen
                    inboxes[dst][v] = payload
                    if record_transcripts:
                        sent_records[v][dst] = payload
                    if per_message:
                        obs.on_message(
                            round=this_round,
                            src=v,
                            dst=dst,
                            bits=plen,
                            kind="bulk",
                        )
                node._outbox = {}
                node._bulk_outbox = {}
            if injector is not None:
                # Forged-identity messages land last, into slots no
                # genuine delivery claimed.
                injector.finish_round(this_round, inboxes, round_received)
            total_bits += round_msg_bits
            bulk_bits += round_bulk_bits
            for v in range(n):
                sent_bits[v] += round_sent[v]
                received_bits[v] += round_received[v]
            rounds = this_round
            if obs is not None:
                obs.on_round(
                    RoundStats(
                        round=this_round,
                        unicast_messages=round_msgs,
                        broadcast_messages=0,
                        bulk_messages=round_bulk_msgs,
                        message_bits=round_msg_bits,
                        bulk_bits=round_bulk_bits,
                        sent_bits=round_sent,
                        received_bits=round_received,
                    )
                )

            for v in range(n):
                nodes[v]._inbox = inboxes[v]
                nodes[v]._round = rounds
                if record_transcripts:
                    records[v].append(
                        RoundRecord(sent=sent_records[v], received=dict(inboxes[v]))
                    )

            if timer is not None:
                timer.start("advance")
            for v in sorted(live):
                advance(v)
            if timer is not None:
                obs.on_phases(round=this_round, seconds=timer.flush())

        out_transcripts = None
        if record_transcripts:
            out_transcripts = tuple(
                Transcript(node=v, n=n, rounds=tuple(records[v]))
                for v in range(n)
            )
        counters = tuple(dict(nodes[v].counters) for v in range(n))
        metrics = None
        if obs is not None:
            obs.on_run_end(rounds=rounds, counters=counters)
            metrics = obs.run_metrics()
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_message_bits=total_bits,
            bulk_bits=bulk_bits,
            sent_bits=tuple(sent_bits),
            received_bits=tuple(received_bits),
            counters=counters,
            transcripts=out_transcripts,
            metrics=metrics,
        )
