"""The reference execution backend.

This is the original lockstep generator engine, extracted verbatim from
``repro.clique.network``: it validates every queued message against the
model's rules at send time (one message of at most ``B`` bits per
ordered pair per round), supports transcript recording, the broadcast
congested clique, and restricted CONGEST topologies.  It is the
semantic ground truth every other backend is differentially tested
against (:mod:`repro.engine.diff`).
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from ..clique.bits import BitString
from ..clique.errors import RoundLimitExceeded
from ..clique.network import NodeProgram, RunResult
from ..clique.node import Node
from ..clique.transcript import RoundRecord, Transcript
from .base import Engine, register_engine, spawn_generators

__all__ = ["ReferenceEngine"]


@register_engine
class ReferenceEngine(Engine):
    """Always-validating, transcript-capable lockstep backend.

    The engine advances one generator-coroutine per node in lockstep:

    1. every live node's generator runs until its next ``yield``
       (queueing messages via ``Node.send``) or until it returns (halts
       with an output),
    2. the engine validates every queued message against the model's
       rules and the active model variant (broadcast-only, CONGEST
       topology),
    3. messages are delivered into the recipients' inboxes and the round
       counter increments.
    """

    name = "reference"

    def execute(
        self,
        clique,
        program: NodeProgram,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
    ) -> RunResult:
        """Run ``program`` on all nodes synchronously (see class docs)."""
        n = clique.n
        nodes = [
            Node(v, n, clique.bandwidth, inputs[v], auxes[v]) for v in range(n)
        ]
        gens = spawn_generators(program, nodes)
        outputs: dict[int, Any] = {}
        records: list[list[RoundRecord]] = [[] for _ in range(n)]

        live = set(range(n))
        rounds = 0
        total_bits = 0
        bulk_bits = 0
        sent_bits = [0] * n
        received_bits = [0] * n
        record_transcripts = clique.record_transcripts

        def advance(v: int) -> None:
            try:
                next(gens[v])
            except StopIteration as stop:
                outputs[v] = stop.value
                nodes[v]._halted = True
                live.discard(v)

        # Initial local-computation phase (before the first round).
        for v in range(n):
            advance(v)

        while True:
            pending = any(
                nodes[v]._outbox or nodes[v]._bulk_outbox for v in range(n)
            )
            if not live and not pending:
                break
            if rounds >= clique.max_rounds:
                raise RoundLimitExceeded(clique.max_rounds)

            # Deliver: swap outboxes into inboxes.
            inboxes: list[dict[int, BitString]] = [{} for _ in range(n)]
            sent_records: list[dict[int, BitString]] = [{} for _ in range(n)]
            for v in range(n):
                node = nodes[v]
                if clique.broadcast_only and node._outbox:
                    payloads = set(node._outbox.values())
                    if len(payloads) != 1 or len(node._outbox) != n - 1:
                        from ..clique.errors import ProtocolViolation

                        raise ProtocolViolation(
                            f"broadcast congested clique: node {v} must "
                            f"send one identical message to all n-1 peers "
                            f"or stay silent (sent {len(node._outbox)} "
                            f"messages, {len(payloads)} distinct)"
                        )
                if clique.broadcast_only and node._bulk_outbox:
                    from ..clique.errors import ProtocolViolation

                    raise ProtocolViolation(
                        "broadcast congested clique: the cost-model bulk "
                        "channel is unicast; use direct message passing"
                    )
                for dst, payload in node._outbox.items():
                    if clique.topology is not None and not clique.topology.has_edge(
                        v, dst
                    ):
                        from ..clique.errors import ProtocolViolation

                        raise ProtocolViolation(
                            f"CONGEST: node {v} sent to non-neighbour {dst}"
                        )
                    total_bits += len(payload)
                    sent_bits[v] += len(payload)
                    received_bits[dst] += len(payload)
                    inboxes[dst][v] = payload
                    if record_transcripts:
                        sent_records[v][dst] = payload
                for dst, payload in node._bulk_outbox.items():
                    bulk_bits += len(payload)
                    sent_bits[v] += len(payload)
                    received_bits[dst] += len(payload)
                    inboxes[dst][v] = payload
                    if record_transcripts:
                        sent_records[v][dst] = payload
                node._outbox = {}
                node._bulk_outbox = {}
            rounds += 1

            for v in range(n):
                nodes[v]._inbox = inboxes[v]
                nodes[v]._round = rounds
                if record_transcripts:
                    records[v].append(
                        RoundRecord(
                            sent=sent_records[v], received=dict(inboxes[v])
                        )
                    )

            for v in sorted(live):
                advance(v)

        transcripts = None
        if record_transcripts:
            transcripts = tuple(
                Transcript(node=v, n=n, rounds=tuple(records[v]))
                for v in range(n)
            )
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_message_bits=total_bits,
            bulk_bits=bulk_bits,
            sent_bits=tuple(sent_bits),
            received_bits=tuple(received_bits),
            counters=tuple(dict(nodes[v].counters) for v in range(n)),
            transcripts=transcripts,
        )
