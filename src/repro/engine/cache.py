"""Content-addressed on-disk run cache.

Re-running a sweep or a benchmark grid should be free when nothing
changed.  A :class:`RunCache` stores pickled run payloads under a key
derived from everything that determines the result:

* the program name (a stable, qualified identifier),
* the clique size ``n`` and bandwidth configuration,
* a digest of the inputs (:func:`content_digest` canonically hashes
  graphs, numpy arrays, bit strings and plain containers),
* the engine configuration (:meth:`repro.engine.base.Engine.describe`).

Entries are sharded two-level directories of ``<sha256>.pkl`` files;
writes are atomic (temp file + rename), so concurrent sweep workers and
concurrent sweeps can share one cache directory.  A corrupt or
unreadable entry behaves as a miss *and self-heals*: the bad file is
deleted (with a :class:`RuntimeWarning`) so repeated lookups don't
re-parse garbage; ``get(..., strict=True)`` raises
:class:`~repro.clique.errors.CacheCorruption` instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Iterator

from ..clique.errors import CacheCorruption

__all__ = ["RunCache", "content_digest", "default_cache_dir"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry on format changes.
#: v2: keys include the observer configuration and payloads carry
#: ``RunResult.metrics`` (a v1 metrics-free entry must not satisfy a
#: metrics-on caller).
#: v3: ``RunMetrics`` gained the ``faults`` field (older pickled frozen
#: instances would lack the attribute) and keys may carry a fault-plan
#: description in ``extra``.
_SCHEMA_VERSION = 3


def default_cache_dir() -> Path:
    """The default on-disk location: ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-clique/runs``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-clique" / "runs"


def _feed(h: "hashlib._Hash", obj: Any) -> None:
    """Recursively feed a canonical, type-tagged encoding of ``obj``."""
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00b1" if obj else b"\x00b0")
    elif isinstance(obj, int):
        h.update(b"\x00i" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"\x00f" + repr(obj).encode())
    elif isinstance(obj, str):
        h.update(b"\x00s" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"\x00y" + obj)
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00l" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, dict):
        h.update(b"\x00d" + str(len(obj)).encode())
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
    elif isinstance(obj, (set, frozenset)):
        h.update(b"\x00e" + str(len(obj)).encode())
        for item in sorted(obj, key=repr):
            _feed(h, item)
    elif hasattr(obj, "adjacency") and hasattr(obj, "n"):
        # CliqueGraph (and weighted variants): hash the full matrix.
        h.update(b"\x00G" + str(obj.n).encode())
        _feed(h, obj.adjacency)
    elif hasattr(obj, "to_str") and hasattr(obj, "value"):
        # BitString: value + exact bit length.
        h.update(b"\x00B" + str(len(obj)).encode() + b":" + str(obj.value).encode())
    elif type(obj).__module__ == "numpy":
        import numpy as np

        arr = np.asarray(obj)
        h.update(b"\x00a" + str(arr.shape).encode() + str(arr.dtype).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    else:
        # Last resort: a stable repr.  Callables hash by qualified name.
        name = getattr(obj, "__qualname__", None)
        if name is not None:
            h.update(b"\x00c" + (getattr(obj, "__module__", "") + "." + name).encode())
        else:
            h.update(b"\x00r" + repr(obj).encode())


def content_digest(obj: Any) -> str:
    """SHA-256 hex digest of a canonical encoding of ``obj``.

    Handles graphs, numpy arrays, bit strings, containers and scalars;
    equal content yields equal digests across processes and runs.
    """
    h = hashlib.sha256()
    _feed(h, obj)
    return h.hexdigest()


class RunCache:
    """On-disk, content-addressed store of run results.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir`.  Created
        lazily on first write.
    max_entries:
        Optional LRU bound: after every write the oldest entries (by
        file mtime — a hit refreshes it) are evicted until at most this
        many remain.  ``None`` (the default) means unbounded, the
        historical behaviour.
    max_entry_bytes:
        Optional admission control: a payload whose pickled size exceeds
        this many bytes is not stored (``put`` returns ``False`` and
        counts a rejection).  Keeps one huge transcript-laden result
        from evicting thousands of small sweep points.
    """

    def __init__(
        self,
        root: "str | os.PathLike | None" = None,
        *,
        max_entries: "int | None" = None,
        max_entry_bytes: "int | None" = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_entry_bytes is not None and max_entry_bytes < 1:
            raise ValueError(f"max_entry_bytes must be >= 1, got {max_entry_bytes}")
        self.max_entries = max_entries
        self.max_entry_bytes = max_entry_bytes
        #: In-process lookup counters (benchmarks and sweep reports read
        #: them; corrupt/evicted entries count as misses).
        self.hits = 0
        self.misses = 0
        #: Entries removed by the LRU bound (this process only).
        self.evictions = 0
        #: Payloads refused by the admission bound (this process only).
        self.rejections = 0

    # -- keys ------------------------------------------------------------

    def key_for(
        self,
        *,
        program: str,
        n: Any,
        bandwidth: Any,
        input_digest: str,
        engine: Any,
        observer: Any = None,
        extra: Any = None,
    ) -> str:
        """Cache key from the fields that determine a run's outcome.

        ``observer`` is an observer spec or its description dict (see
        :func:`repro.obs.describe_observer`): runs observed differently
        carry different ``RunResult.metrics`` payloads, so a metrics-off
        entry must never be served to a metrics-on caller.  Specs are
        normalised, so the default ``None`` hashes identically to the
        default metrics-collector description.
        """
        if not isinstance(observer, dict):
            from ..obs import describe_observer

            observer = describe_observer(observer)
        blob = json.dumps(
            {
                "schema": _SCHEMA_VERSION,
                "program": program,
                "n": n,
                "bandwidth": bandwidth,
                "input": input_digest,
                "engine": engine,
                "observer": observer,
                "extra": extra,
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- storage ---------------------------------------------------------

    def get(self, key: str, *, strict: bool = False) -> Any:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry is treated as a miss, *evicted*
        from disk (so the next lookup doesn't re-parse garbage) and
        reported with a :class:`RuntimeWarning` — or, with
        ``strict=True``, by raising
        :class:`~repro.clique.errors.CacheCorruption` after eviction.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
        ) as exc:
            self.misses += 1
            self._evict_corrupt(
                key, path, f"unreadable: {type(exc).__name__}: {exc}", strict
            )
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            self.misses += 1
            self._evict_corrupt(
                key,
                path,
                "malformed entry (missing or mismatched key)",
                strict,
            )
            return None
        self.hits += 1
        try:
            # Refresh the LRU clock: recently-hit entries survive longest.
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away after read
            pass
        return entry.get("payload")

    def _evict_corrupt(self, key: str, path: Path, why: str, strict: bool) -> None:
        """Delete a bad entry and report it (warn, or raise when strict)."""
        try:
            path.unlink()
            action = "evicted"
        except OSError as exc:  # pragma: no cover - unlink races are rare
            action = f"eviction failed ({exc})"
        message = f"corrupt run-cache entry {path} ({why}); {action}"
        if strict:
            raise CacheCorruption(message, key=key, path=str(path))
        warnings.warn(message, RuntimeWarning, stacklevel=3)

    def put(self, key: str, payload: Any) -> bool:
        """Atomically store ``payload`` under ``key``.

        Returns ``True`` when the entry was written, ``False`` when the
        admission bound refused it.  Writes go through a temp file and
        ``os.replace``, so two processes racing on the same key leave
        one intact winner, never a torn entry.
        """
        blob = pickle.dumps(
            {"key": key, "payload": payload}, protocol=pickle.HIGHEST_PROTOCOL
        )
        if self.max_entry_bytes is not None and len(blob) > self.max_entry_bytes:
            self.rejections += 1
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_entries is not None:
            self._evict_lru()
        return True

    def _evict_lru(self) -> None:
        """Unlink oldest-mtime entries until the LRU bound holds."""
        entries = []
        for path in self._entries():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:  # pragma: no cover - entry raced away
                pass
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, path in entries[:excess]:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:  # pragma: no cover - concurrent eviction
                pass

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def _entries(self) -> Iterator[Path]:
        if not self.root.exists():
            return iter(())
        return self.root.glob("*/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        """Counters and occupancy as a JSON-able dict.

        ``entries`` is the current on-disk count (shared across
        processes); the hit/miss/eviction/rejection counters are this
        process's own.  ``repro serve --status`` prints this dict.
        """
        return {
            "root": str(self.root),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "max_entries": self.max_entries,
            "max_entry_bytes": self.max_entry_bytes,
        }

    def __repr__(self) -> str:
        return f"RunCache(root={str(self.root)!r})"
