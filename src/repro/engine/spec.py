"""The unified execution specification.

Historically every entry point grew its own engine plumbing:
``CongestedClique.run`` took ``engine=``/``check=``/``observer=``/
``fault_plan=`` keywords, ``run_sweep`` took the same names with
slightly different semantics, the ``repro serve`` request schema carried
flat ``engine``/``observer``/``fault_plan`` keys, and the bench workload
registry mapped its own engine strings.  :class:`ExecutionSpec` is the
one value object that captures *how* a run executes — backend, check
level, observer, fault plan, transcript recording — and
:func:`resolve_execution` is the single place it is resolved (the
successor of the bare :func:`repro.engine.base.resolve_engine`).

All four entry points accept an ``execution=`` argument:

* ``CongestedClique.run(program, g, execution=ExecutionSpec(engine="columnar"))``
* ``run_spec(spec, execution=...)`` / ``run_sweep(..., execution=...)``
* ``ServiceClient.run(..., execution=...)`` — serialised with
  :meth:`ExecutionSpec.to_dict` into the JSON protocol and rebuilt
  server-side with :meth:`ExecutionSpec.from_dict`
* bench workload params carry an ``"execution"`` dict

Legacy per-field keywords keep working; a field given both ways must
agree or the resolver raises, so a spec can never be silently
overridden.  :meth:`ExecutionSpec.describe` renders the canonical
cache-key material (engine / observer / fault-plan descriptions) that
:class:`~repro.engine.cache.RunCache` keys are built from — one spec,
one key, no matter which entry point produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any

from ..clique.errors import CliqueError
from .base import Engine, canonical_check, resolve_engine

__all__ = ["ExecutionSpec", "ResolvedExecution", "resolve_execution"]


_UNSET = object()


@dataclass(frozen=True)
class ExecutionSpec:
    """How a run executes: backend + check + observer + fault plan.

    Every field defaults to ``None`` meaning "unset" (the entry point's
    default applies): ``engine=None`` resolves to the reference backend,
    ``observer=None`` to the default metrics collector, ``check=None``
    to the engine's own default level.

    ``engine`` is a registry name or an :class:`~repro.engine.base.Engine`
    instance; ``observer`` an observer *spec* (``True``/``False``/
    ``"metrics"``/``"off"``) or instance; ``fault_plan`` a spec string
    like ``"drop=0.2,seed=7"`` or a :class:`~repro.faults.FaultPlan`;
    ``transcripts`` overrides the clique's transcript recording;
    ``shards`` requests shard-parallel execution (``0`` = one shard per
    available core) on engines that support it — currently
    ``engine="columnar"``.
    """

    engine: Any = None
    check: str | None = None
    observer: Any = None
    fault_plan: Any = None
    transcripts: bool | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "check", canonical_check(self.check))
        shards = self.shards
        if shards is not None and (
            isinstance(shards, bool)
            or not isinstance(shards, int)
            or shards < 0
        ):
            raise CliqueError(
                f"shards must be a non-negative int (0 = one shard per "
                f"available core) or None, got {shards!r}"
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def coerce(cls, value: Any) -> "ExecutionSpec":
        """Normalise an ``execution=`` argument into a spec.

        Accepts an :class:`ExecutionSpec` (returned unchanged), a dict
        (:meth:`from_dict`), an engine name or :class:`Engine` instance
        (shorthand for ``ExecutionSpec(engine=...)``), or ``None`` (the
        empty spec).
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        if isinstance(value, (str, Engine)):
            return cls(engine=value)
        raise CliqueError(
            f"execution must be an ExecutionSpec, a dict, an engine name, "
            f"an Engine instance or None, got {value!r}"
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionSpec":
        """Rebuild a spec from its :meth:`to_dict` JSON form."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CliqueError(
                f"unknown ExecutionSpec field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(data)
        plan = kwargs.get("fault_plan")
        if isinstance(plan, dict):
            from ..faults import FaultPlan

            kwargs["fault_plan"] = FaultPlan(**plan)
        return cls(**kwargs)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form for the service protocol (round-trips through
        :meth:`from_dict`).

        Only *specs* serialise: an :class:`Engine` or ``Observer``
        instance has no faithful JSON form, so passing one raises —
        spell the engine as ``engine="name", check=...`` instead.  A
        :class:`~repro.faults.FaultPlan` serialises to its field dict.
        Unset fields are omitted.
        """
        from ..faults import FaultPlan
        from ..obs import Observer

        if isinstance(self.engine, Engine):
            raise CliqueError(
                f"ExecutionSpec with an Engine instance ({self.engine!r}) "
                f"cannot be serialised; use engine={self.engine.name!r} "
                f"plus check= instead"
            )
        if isinstance(self.observer, Observer):
            raise CliqueError(
                f"ExecutionSpec with an Observer instance "
                f"({self.observer!r}) cannot be serialised; use an "
                f"observer spec (True/False/'metrics'/'off') instead"
            )
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if isinstance(value, FaultPlan):
                value = {
                    pf.name: getattr(value, pf.name) for pf in fields(value)
                }
            out[f.name] = value
        return out

    def describe(self) -> dict:
        """Canonical JSON description — the run-cache key material.

        The three components match what :func:`run_sweep` has always fed
        into :meth:`RunCache.key_for` (engine description, observer
        description, fault-plan description), so ExecutionSpec-keyed
        lookups hit entries warmed through any legacy path.
        """
        from ..faults import resolve_fault_plan
        from ..obs import describe_observer

        plan = resolve_fault_plan(self.fault_plan)
        engine = resolve_engine(
            self.engine, check=self.check, shards=self.shards
        )
        return {
            "engine": engine.describe(),
            "observer": describe_observer(self.observer),
            "fault_plan": plan.describe() if plan is not None else None,
        }

    # -- merging ---------------------------------------------------------

    def merged(
        self,
        *,
        engine: Any = None,
        check: Any = None,
        observer: Any = None,
        fault_plan: Any = None,
        transcripts: bool | None = None,
        shards: int | None = None,
    ) -> "ExecutionSpec":
        """Overlay legacy per-field keywords onto this spec.

        A field set in exactly one place wins; set in both places it
        must agree (``==``) or a :class:`CliqueError` is raised — an
        explicit keyword can fill a gap in the spec but never silently
        override it.
        """
        updates: dict = {}
        for name, value in (
            ("engine", engine),
            ("check", canonical_check(check)),
            ("observer", observer),
            ("fault_plan", fault_plan),
            ("transcripts", transcripts),
            ("shards", shards),
        ):
            if value is None:
                continue
            current = getattr(self, name)
            if current is None:
                updates[name] = value
            elif _differs(current, value):
                raise CliqueError(
                    f"conflicting execution settings: {name}={current!r} "
                    f"from the ExecutionSpec vs {name}={value!r} from the "
                    f"keyword argument"
                )
        return replace(self, **updates) if updates else self


def _differs(a: Any, b: Any) -> bool:
    try:
        return bool(a != b)
    except Exception:  # pragma: no cover - exotic __eq__
        return a is not b


@dataclass
class ResolvedExecution:
    """An :class:`ExecutionSpec` after resolution.

    ``engine`` is a ready :class:`~repro.engine.base.Engine` instance;
    the remaining fields stay in spec form (engines resolve observers
    and fault plans themselves, per run), and ``spec`` is the merged
    normalised spec for cache keys and reporting.
    """

    engine: Engine
    observer: Any
    fault_plan: Any
    transcripts: bool | None
    spec: ExecutionSpec


def resolve_execution(
    execution: Any = None,
    *,
    engine: Any = None,
    check: Any = None,
    observer: Any = None,
    fault_plan: Any = None,
    transcripts: bool | None = None,
    shards: int | None = None,
) -> ResolvedExecution:
    """The one resolution point for "how does this run execute".

    Coerces ``execution`` (spec, dict, engine name/instance or ``None``),
    overlays the legacy keywords (conflicts raise), resolves the engine
    through the registry — lazy backends included — and returns the
    bundle every entry point hands to ``Engine.execute``.
    """
    spec = ExecutionSpec.coerce(execution).merged(
        engine=engine,
        check=check,
        observer=observer,
        fault_plan=fault_plan,
        transcripts=transcripts,
        shards=shards,
    )
    return ResolvedExecution(
        engine=resolve_engine(spec.engine, check=spec.check, shards=spec.shards),
        observer=spec.observer,
        fault_plan=spec.fault_plan,
        transcripts=spec.transcripts,
        spec=spec,
    )
