"""Pluggable execution engines for the congested clique simulator.

One semantic model, multiple interchangeable execution backends:

* :class:`~repro.engine.reference.ReferenceEngine` (``"reference"``) —
  the always-validating, transcript-capable lockstep engine; the
  semantic ground truth and the default for
  :meth:`repro.clique.network.CongestedClique.run`.
* :class:`~repro.engine.fast.FastEngine` (``"fast"``) — batched message
  delivery, selectable validation (``check="full"|"bandwidth"|"off"``),
  transcripts off by default; differentially tested against the
  reference backend on the algorithm catalog.
* :func:`~repro.engine.pool.run_sweep` — a multiprocess sweep runner
  fanning ``(n, seed, params)`` grids across worker processes with
  deterministic per-task seeding.
* :class:`~repro.engine.cache.RunCache` — a content-addressed on-disk
  run cache keyed by (program name, n, bandwidth, input digest, engine
  config), so re-run sweeps and benchmark reruns are free.
* :mod:`repro.engine.diff` — the differential checker asserting that
  backends agree on outputs and round counts across the catalog.

Quickstart::

    from repro.clique import CliqueGraph, run_algorithm
    from repro.engine import FastEngine, run_sweep
    from repro.engine.diff import catalog_factory

    result = run_algorithm(program, g, engine="fast")
    result = run_algorithm(program, g, engine=FastEngine(check="off"))

    outcomes = run_sweep(
        catalog_factory,
        [{"algorithm": "subgraph", "n": n, "seed": s}
         for n in (27, 64, 125) for s in range(3)],
        workers=4,
    )
"""

from .base import (
    CHECK_LEVELS,
    ENGINES,
    Engine,
    canonical_check,
    engine_names,
    register_engine,
    resolve_engine,
)
from .cache import RunCache, content_digest, default_cache_dir
from .columnar import (
    ArrayContext,
    ColumnarEngine,
    DualProgram,
    adapt_generator,
    array_program,
)
from .diff import (
    CATALOG,
    COLUMNAR_CATALOG,
    COST_DECLARATIONS,
    NATIVE_RESILIENT,
    RESILIENT_CATALOG,
    EngineDiff,
    algorithm,
    assert_engines_agree,
    catalog_factory,
    diff_catalog,
    diff_columnar,
    diff_engines,
    diff_resilient,
)
from .fast import FastEngine
from .pool import (
    RunSpec,
    SweepOutcome,
    aggregate_sweep_metrics,
    derive_seed,
    pool_stats,
    run_spec,
    run_sweep,
    shutdown_pool,
)
from .reference import ReferenceEngine
from .spec import ExecutionSpec, ResolvedExecution, resolve_execution

__all__ = [
    "ArrayContext",
    "CATALOG",
    "CHECK_LEVELS",
    "COLUMNAR_CATALOG",
    "COST_DECLARATIONS",
    "ColumnarEngine",
    "DualProgram",
    "ENGINES",
    "Engine",
    "EngineDiff",
    "ExecutionSpec",
    "FastEngine",
    "NATIVE_RESILIENT",
    "RESILIENT_CATALOG",
    "ReferenceEngine",
    "ResolvedExecution",
    "RunCache",
    "RunSpec",
    "SweepOutcome",
    "adapt_generator",
    "aggregate_sweep_metrics",
    "algorithm",
    "array_program",
    "assert_engines_agree",
    "canonical_check",
    "catalog_factory",
    "content_digest",
    "default_cache_dir",
    "derive_seed",
    "diff_catalog",
    "diff_columnar",
    "diff_engines",
    "diff_resilient",
    "engine_names",
    "pool_stats",
    "register_engine",
    "resolve_engine",
    "resolve_execution",
    "run_spec",
    "run_sweep",
    "shutdown_pool",
]
