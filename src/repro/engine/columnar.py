"""The columnar whole-round execution backend (``engine="columnar"``).

Every other backend advances ``n`` Python generators — one per node —
and delivers messages through per-node dictionaries, which caps the
clique sizes the simulator can drive.  The columnar engine flips the
program model: an **array program** is *one* generator over whole-clique
rounds whose state lives in numpy arrays indexed by node id.  Per-round
outboxes, link loads and bit totals are preallocated arrays, and a round
is a handful of vectorised operations:

* emission — the program queues traffic with
  :meth:`ArrayContext.broadcast` / :meth:`ArrayContext.send` (value
  columns + width columns, at most 64 bits per message payload, matching
  the per-link budget ``B = O(log n)``) and the privileged
  :meth:`ArrayContext.bulk_send` cost-model channel;
* validation — the shared ``CHECK_LEVELS`` vocabulary as array
  comparisons (``widths > B`` for ``"bandwidth"``; addressing, empty
  payloads and duplicate slots via index arithmetic for ``"full"``);
* delivery — conceptually one transpose-gather over the ``(n, n)``
  payload-index matrix (``inbox[dst, src] = outbox[src, dst]``),
  materialised on demand by :meth:`ArrayContext.inbox_dense`;
* accounting — per-node sent/received bit columns via scattered adds,
  with a broadcast of width ``w`` charged as ``n - 1`` recipient
  messages exactly like the reference engine.

Wide payloads are encoded/decoded through the bulk bit-codec kernels
(:func:`repro.clique.bits.encode_uint_array` /
:func:`~repro.clique.bits.decode_uint_array`) by the array ports in
:mod:`repro.algorithms.columnar`.

Observability, fault injection and transcripts are all supported: when a
fault plan, transcript recording or a per-message observer is attached,
delivery drops to an explicit per-message path that consults the
:class:`~repro.faults.FaultInjector` with the exact semantics of the
reference engine (sender always charged, receiver only on arrival, bulk
exempt), so faulty columnar runs are differentially comparable.

Array programs
--------------

An :class:`ArrayProgram` is a callable ``program(ctx) -> generator``:
emissions before a ``yield`` are delivered when the generator resumes
(``ctx`` then exposes the round's inbox), and the generator's return
value becomes the per-node outputs (a mapping, a length-``n`` sequence
or array of per-node values, or ``None``).  Mark a bare array program
with :func:`array_program`, or attach one to an existing generator node
program with :class:`DualProgram` so a single catalog entry runs on
every backend — ``repro.engine.diff`` uses exactly that to gate the
columnar ports against the reference engine.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..clique.bits import BitString
from ..clique.errors import (
    BandwidthExceeded,
    CliqueError,
    DuplicateMessage,
    InvalidAddress,
    ProtocolViolation,
    RoundLimitExceeded,
)
from ..clique.network import RunResult
from ..clique.transcript import RoundRecord, Transcript
from ..faults import FaultInjector, resolve_fault_plan
from ..obs import RoundStats, resolve_observer
from ..obs.profile import PhaseTimer
from .base import CHECK_LEVELS, Engine, canonical_check, register_engine

__all__ = [
    "ArrayContext",
    "ArrayProgram",
    "ColumnarEngine",
    "DualProgram",
    "adapt_generator",
    "array_program",
]

_I64 = np.int64
_U64 = np.uint64
_EMPTY_I = np.empty(0, dtype=_I64)
_EMPTY_U = np.empty(0, dtype=_U64)


@runtime_checkable
class ArrayProgram(Protocol):
    """A whole-clique program: ``program(ctx)`` returns a round generator."""

    __is_array_program__: bool

    def __call__(
        self, ctx: "ArrayContext"
    ) -> Generator[None, None, Any]:  # pragma: no cover - protocol
        ...


def array_program(
    fn: Callable | None = None, *, shardable: bool = False
) -> Callable:
    """Mark ``fn(ctx)`` as an array program runnable by the columnar engine.

    ``shardable=True`` additionally declares the program safe for
    shard-parallel execution (``ColumnarEngine(shards=N)``), where each
    shard runs its own program instance over an owned node range
    ``[ctx.lo, ctx.hi)``.  A shardable program must uphold the contract:

    * emissions carry only owned senders (``lo <= src < hi``), queued in
      ascending owned-block order, so concatenating the shard outboxes
      in shard order reproduces the single-instance emission columns;
    * the inbox is consumed order-insensitively — :attr:`inbox_messages`
      arrives filtered to owned destinations (scatter reductions such as
      ``np.add.at`` / ``np.bitwise_xor.at`` qualify; positional
      consumption does not), while :attr:`inbox_broadcast` stays global;
    * outputs and counters need only be valid on owned rows (the
      coordinator merges owned slices), and outputs must be picklable
      when the process executor ships them back.

    Programs without the flag transparently fall back to single-instance
    execution whatever ``shards=`` asks for.
    """

    def mark(f: Callable) -> Callable:
        f.__is_array_program__ = True
        f.__columnar_shardable__ = shardable
        return f

    return mark if fn is None else mark(fn)


class DualProgram:
    """One catalog entry, two executable forms.

    ``generator`` is the classic per-node program (``program(node)``);
    ``array`` is the columnar form (``program(ctx)``).  The object is
    itself callable as a node program, so the reference/fast/sharded
    engines run the generator form unchanged while the columnar engine
    picks up :attr:`array` — which is how ``repro.engine.diff``
    differentially gates every columnar port against the reference
    semantics.
    """

    __slots__ = ("generator", "array", "__name__")

    def __init__(
        self,
        generator: Callable,
        array: Callable,
        name: str | None = None,
    ) -> None:
        self.generator = generator
        self.array = array
        self.__name__ = name or getattr(generator, "__name__", "dual_program")

    def __call__(self, node: Any) -> Any:
        return self.generator(node)

    def __repr__(self) -> str:
        return f"DualProgram({self.__name__})"


def _array_form(program: Any) -> Callable:
    """The columnar form of ``program``, or raise with guidance."""
    array = getattr(program, "array", None)
    if array is not None:
        return array
    if getattr(program, "__is_array_program__", False):
        return program
    name = getattr(program, "__name__", None) or repr(program)
    raise CliqueError(
        f"the columnar engine needs an array program, but {name!r} is a "
        f"plain per-node generator program; decorate a whole-clique form "
        f"with @array_program or attach one via "
        f"DualProgram(generator, array) — or run on another engine"
    )


def adapt_generator(program: Callable) -> Callable:
    """Bridge a per-node generator program onto the columnar engine.

    The adapted form drives ``n`` instances of ``program`` against real
    :class:`~repro.clique.node.Node` objects (so send-side validation is
    byte-identical to the reference engine) and shuttles their outboxes
    and inboxes through the :class:`ArrayContext` column API.  Rounds,
    bit accounting, halting and counters all follow reference
    semantics: silent rounds count while any node is live, a node that
    sends and then returns still has its messages delivered, and every
    counter a node touches becomes a full per-node column.

    The bridge is for *correctness* (differential gating, fault plans),
    not speed — it runs the same Python generators the reference engine
    would.  Message payloads are limited to the column width of 64 bits;
    wider payloads belong on the bulk channel, which is forwarded as-is.
    """
    from ..clique.node import Node

    @array_program
    def adapted(ctx: "ArrayContext") -> Generator[None, None, dict]:
        n = ctx.n
        nodes = [
            Node(v, n, ctx.bandwidth, ctx.inputs[v], ctx.auxes[v])
            for v in range(n)
        ]
        gens: dict[int, Generator] = {}
        outputs: dict[int, Any] = {}

        def advance(v: int) -> None:
            try:
                next(gens[v])
            except StopIteration as stop:
                outputs[v] = stop.value
                nodes[v]._halted = True
                del gens[v]

        def flush_outboxes() -> None:
            srcs: list[int] = []
            dsts: list[int] = []
            vals: list[int] = []
            wids: list[int] = []
            for node in nodes:
                for dst, payload in node._outbox.items():
                    if len(payload) > 64:
                        raise CliqueError(
                            f"adapt_generator: node {node.id} sent a "
                            f"{len(payload)}-bit payload; columnar message "
                            f"columns carry at most 64 bits"
                        )
                    srcs.append(node.id)
                    dsts.append(dst)
                    vals.append(payload.value)
                    wids.append(len(payload))
                node._outbox = {}
                for dst, payload in node._bulk_outbox.items():
                    ctx.bulk_send(node.id, dst, payload.value, len(payload))
                node._bulk_outbox = {}
            if srcs:
                ctx.send(srcs, dsts, vals, wids)

        for v in range(n):
            gens[v] = program(nodes[v])
            advance(v)

        while gens or any(node._outbox for node in nodes):
            flush_outboxes()
            yield
            inboxes: list[dict[int, BitString]] = [{} for _ in range(n)]
            bs, bv, bw = ctx.inbox_broadcast
            for i in range(bs.size):
                payload = BitString(int(bv[i]), int(bw[i]))
                src = int(bs[i])
                for dst in range(n):
                    if dst != src:
                        inboxes[dst][src] = payload
            ms, md, mv, mw = ctx.inbox_messages
            for i in range(ms.size):
                inboxes[int(md[i])][int(ms[i])] = BitString(
                    int(mv[i]), int(mw[i])
                )
            for src, dst, value, width in ctx.inbox_bulk:
                inboxes[dst][src] = BitString(value, width)
            for v in list(gens):
                nodes[v]._inbox = inboxes[v]
                nodes[v]._round += 1
                advance(v)

        for key in sorted({k for node in nodes for k in node.counters}):
            ctx.count(
                key, [node.counters.get(key, 0) for node in nodes]
            )
        return outputs

    adapted.__name__ = getattr(program, "__name__", "adapted_generator")
    return adapted


class ArrayContext:
    """Whole-clique state handed to an array program.

    Attributes
    ----------
    n, bandwidth:
        Model parameters (``bandwidth`` is the per-link budget ``B``).
    ids:
        ``np.arange(n)`` — the node-id column.
    inputs, auxes:
        Per-node resolved inputs, indexed by node id.
    round:
        Completed communication rounds.
    lo, hi:
        The owned node range under shard-parallel execution (see
        :func:`array_program`); ``(0, n)`` — every node — on the
        single-instance path, so range-aware programs behave
        identically there.

    Emission (before a ``yield``): :meth:`broadcast`, :meth:`send`,
    :meth:`bulk_send`.  Inbox (after a ``yield``):
    :attr:`inbox_broadcast`, :attr:`inbox_messages`, :attr:`inbox_bulk`,
    :meth:`inbox_dense`.  Message payloads are unsigned values of at
    most 64 bits (wide payloads belong on the bulk channel, which
    carries arbitrary-precision ints).
    """

    __slots__ = (
        "n",
        "bandwidth",
        "ids",
        "inputs",
        "auxes",
        "round",
        "lo",
        "hi",
        "_check",
        "_bcast",
        "_uni",
        "_bulk",
        "_in_bcast",
        "_in_coo",
        "_in_bulk",
        "_dense_val",
        "_dense_mask",
        "_counters",
    )

    def __init__(
        self,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        check: str = "bandwidth",
        lo: int = 0,
        hi: int | None = None,
    ) -> None:
        self.n = n
        self.bandwidth = bandwidth
        self.ids = np.arange(n, dtype=_I64)
        self.inputs = tuple(inputs)
        self.auxes = tuple(auxes)
        self.round = 0
        self.lo = lo
        self.hi = n if hi is None else hi
        self._check = check
        self._bcast: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._uni: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._bulk: list[tuple[int, int, int, int]] = []
        self._in_bcast = (_EMPTY_I, _EMPTY_U, _EMPTY_I)
        self._in_coo = (_EMPTY_I, _EMPTY_I, _EMPTY_U, _EMPTY_I)
        self._in_bulk: list[tuple[int, int, int, int]] = []
        # Preallocated (n, n) delivery scratch, materialised on first use.
        self._dense_val: np.ndarray | None = None
        self._dense_mask: np.ndarray | None = None
        self._counters: dict[str, np.ndarray] = {}

    # -- emission --------------------------------------------------------

    def broadcast(
        self,
        values: Any,
        width: Any,
        senders: Any = None,
    ) -> None:
        """Queue one broadcast per sender (default: every node).

        ``values`` is one unsigned payload value per sender (scalar
        broadcasts to all senders); ``width`` the common bit width (or a
        per-sender array).  A broadcast is charged as ``n - 1``
        recipient messages, like every other backend.
        """
        senders = (
            self.ids
            if senders is None
            else np.asarray(senders, dtype=_I64).ravel()
        )
        if senders.size == 0:
            return
        values = np.broadcast_to(
            np.asarray(values, dtype=_U64), senders.shape
        )
        widths = np.broadcast_to(np.asarray(width, dtype=_I64), senders.shape)
        self._bcast.append((senders, values, widths))

    def send(self, src: Any, dst: Any, values: Any, width: Any) -> None:
        """Queue addressed messages: ``values[i]`` goes ``src[i] -> dst[i]``.

        All four arguments broadcast against each other; ``width`` may
        be a scalar or a per-message array.
        """
        src = np.asarray(src, dtype=_I64).ravel()
        dst = np.asarray(dst, dtype=_I64).ravel()
        if src.size == 0 and dst.size == 0:
            return
        src, dst = np.broadcast_arrays(src, dst)
        values = np.broadcast_to(np.asarray(values, dtype=_U64), src.shape)
        widths = np.broadcast_to(np.asarray(width, dtype=_I64), src.shape)
        self._uni.append((src, dst, values, widths))

    def bulk_send(self, src: int, dst: int, value: int, width: int) -> None:
        """Privileged unbounded send on the cost-model bulk channel.

        Mirrors ``Node._bulk_send``: reserved for routers that charge
        rounds separately (Lenzen's theorem); ``value`` is an
        arbitrary-precision unsigned int, empty payloads are dropped,
        and the channel is exempt from fault injection.
        """
        if width == 0:
            return
        self._bulk.append((int(src), int(dst), int(value), int(width)))

    def count(self, key: str, amounts: Any) -> None:
        """Add per-node amounts to the measurement counter ``key``."""
        column = self._counters.get(key)
        if column is None:
            column = self._counters[key] = np.zeros(self.n, dtype=_I64)
        column += np.asarray(amounts, dtype=_I64)

    # -- inbox -----------------------------------------------------------

    @property
    def inbox_broadcast(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unexpanded broadcast deliveries: ``(senders, values, widths)``.

        Every node other than a sender received that sender's value.
        Empty on the explicit delivery path (faults/transcripts), where
        broadcasts arrive expanded in :attr:`inbox_messages`.
        """
        return self._in_bcast

    @property
    def inbox_messages(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Delivered addressed messages as ``(src, dst, values, widths)``."""
        return self._in_coo

    @property
    def inbox_bulk(self) -> list[tuple[int, int, int, int]]:
        """Bulk-channel deliveries: ``(src, dst, value, width)`` tuples."""
        return self._in_bulk

    def inbox_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """The round's inbox as the dense ``(n, n)`` gather.

        Returns ``(values, mask)`` with ``values[dst, src]`` the payload
        value delivered ``src -> dst`` and ``mask`` marking real
        deliveries.  The arrays are preallocated scratch reused across
        rounds — consume (or copy) them before the next ``yield``.
        """
        n = self.n
        if self._dense_val is None:
            self._dense_val = np.zeros((n, n), dtype=_U64)
            self._dense_mask = np.zeros((n, n), dtype=bool)
        vals, mask = self._dense_val, self._dense_mask
        vals.fill(0)
        mask.fill(False)
        bs, bv, _bw = self._in_bcast
        if bs.size:
            vals[:, bs] = bv
            mask[:, bs] = True
            mask[bs, bs] = False
        src, dst, val, _wid = self._in_coo
        if src.size:
            vals[dst, src] = val
            mask[dst, src] = True
        return vals, mask

    # -- engine internals ------------------------------------------------

    def _has_pending(self) -> bool:
        return bool(self._bcast or self._uni or self._bulk)

    def _collect_outbox(
        self,
    ) -> tuple[
        np.ndarray, np.ndarray, np.ndarray,
        np.ndarray, np.ndarray, np.ndarray, np.ndarray,
    ]:
        """Concatenate the round's emission segments into flat columns."""
        if len(self._bcast) == 1:
            bs, bv, bw = self._bcast[0]
        elif self._bcast:
            bs = np.concatenate([seg[0] for seg in self._bcast])
            bv = np.concatenate([seg[1] for seg in self._bcast])
            bw = np.concatenate([seg[2] for seg in self._bcast])
        else:
            bs, bv, bw = _EMPTY_I, _EMPTY_U, _EMPTY_I
        if len(self._uni) == 1:
            us, ud, uv, uw = self._uni[0]
        elif self._uni:
            us = np.concatenate([seg[0] for seg in self._uni])
            ud = np.concatenate([seg[1] for seg in self._uni])
            uv = np.concatenate([seg[2] for seg in self._uni])
            uw = np.concatenate([seg[3] for seg in self._uni])
        else:
            us, ud, uv, uw = _EMPTY_I, _EMPTY_I, _EMPTY_U, _EMPTY_I
        return bs, bv, bw, us, ud, uv, uw

    def _clear_outbox(self) -> None:
        self._bcast.clear()
        self._uni.clear()
        self._bulk.clear()


def _first(mask: np.ndarray) -> int:
    return int(np.argmax(mask))


@register_engine
class ColumnarEngine(Engine):
    """Vectorised whole-round backend for array programs.

    Parameters
    ----------
    check:
        Validation level (``"full"``, ``"bandwidth"`` — the default, as
        on the fast engine — or ``"off"``), applied as array comparisons
        over each round's emission columns.
    record_transcripts:
        Force per-node transcript recording (also enabled by the
        clique's ``record_transcripts``); recording uses the explicit
        per-message delivery path.
    shards:
        ``None`` (the default) runs the classic single-instance path.
        ``N > 1`` partitions the node range into ``N`` shards (clamped
        to ``n``) that each run their own instance of a *shardable*
        array program (see :func:`array_program`), exchanging only the
        cross-shard message columns per round; ``0`` means one shard
        per available CPU.  Results are bit-identical to the
        single-instance path for every shard count.  Runs that need the
        explicit per-message path (fault plans, transcripts, per-message
        or timing observers) and non-shardable programs transparently
        fall back to single-instance execution.
    executor:
        ``"process"`` (the default when sharding) forks one worker per
        shard; ``"inline"`` advances the shards in-process (testing and
        differential gating).  Falls back to inline with a
        :class:`RuntimeWarning` where ``fork`` is unavailable.
    transport:
        ``"direct"`` hands inline shard traffic over as objects;
        ``"pickle"`` round-trips it through the pickle-protocol-5
        :class:`~repro.service.kernel.ShardTransport` (process shards
        always use the pickled framing).
    """

    name = "columnar"

    def __init__(
        self,
        check: str = "bandwidth",
        record_transcripts: bool = False,
        shards: "int | None" = None,
        executor: "str | None" = None,
        transport: str = "direct",
    ) -> None:
        check = canonical_check(check)
        if check not in CHECK_LEVELS:
            raise CliqueError(f"check must be one of {CHECK_LEVELS}, got {check!r}")
        if shards is not None and (
            isinstance(shards, bool) or not isinstance(shards, int) or shards < 0
        ):
            raise CliqueError(
                f"shards must be None, 0 (auto) or a positive int, got {shards!r}"
            )
        if executor not in (None, "inline", "process"):
            raise CliqueError(
                f"executor must be 'inline' or 'process', got {executor!r}"
            )
        if transport not in ("direct", "pickle"):
            raise CliqueError(
                f"transport must be 'direct' or 'pickle', got {transport!r}"
            )
        self.check = check
        self.record_transcripts = record_transcripts
        self.shards = shards
        self.executor = executor
        self.transport = transport

    def describe(self) -> dict:
        """Engine configuration (cache key component).

        The shard keys appear only when sharding is configured, so
        cache keys of classic single-instance runs are unchanged.
        """
        out = {
            "engine": self.name,
            "check": self.check,
            "record_transcripts": self.record_transcripts,
        }
        if self.shards is not None:
            out["shards"] = self.shards
            out["executor"] = self.executor or "process"
            out["transport"] = self.transport
        return out

    def _effective_shards(self, n: int) -> int:
        """The resolved shard count for an ``n``-node run."""
        shards = self.shards
        if shards is None:
            return 1
        if shards == 0:
            from .pool import available_cpus

            shards = available_cpus()
        return max(1, min(int(shards), n))

    def execute(
        self,
        clique,
        program,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        *,
        observer: Any = None,
        transcripts: bool | None = None,
        fault_plan: Any = None,
    ) -> RunResult:
        """Run the array form of ``program`` (see the module docstring)."""
        if clique.broadcast_only or clique.topology is not None:
            raise CliqueError(
                "the columnar engine supports the plain congested clique "
                "only; use the reference engine for broadcast-only cliques "
                "or CONGEST topologies"
            )
        array = _array_form(program)
        n = clique.n
        bandwidth = clique.bandwidth
        record = (
            transcripts
            if transcripts is not None
            else (self.record_transcripts or clique.record_transcripts)
        )
        obs = resolve_observer(observer)
        plan = resolve_fault_plan(fault_plan)
        injector = FaultInjector(plan, n, obs) if plan is not None else None
        per_message = obs is not None and obs.wants_messages
        track_halts = obs is not None and obs.wants_halts
        timer = PhaseTimer() if obs is not None and obs.wants_timing else None
        explicit = injector is not None or record or per_message

        shard_count = self._effective_shards(n)
        if (
            shard_count > 1
            and not explicit
            and not track_halts
            and timer is None
            and getattr(array, "__columnar_shardable__", False)
        ):
            return self._execute_sharded(
                clique, array, inputs, auxes, obs=obs, shard_count=shard_count
            )

        if timer is not None:
            timer.start("spawn")
        ctx = ArrayContext(n, bandwidth, inputs, auxes, check=self.check)
        gen = array(ctx)
        if not hasattr(gen, "send"):
            raise CliqueError(
                "array program must be a generator function "
                "(use 'yield' for round boundaries)"
            )
        if obs is not None:
            obs.on_run_start(n=n, bandwidth=bandwidth, engine=self.name)

        rounds = 0
        total_bits = 0
        bulk_total = 0
        sent_totals = np.zeros(n, dtype=_I64)
        received_totals = np.zeros(n, dtype=_I64)
        records: list[list[RoundRecord]] = [[] for _ in range(n)]
        finished = False
        out_value: Any = None

        def advance() -> None:
            nonlocal finished, out_value
            if timer is not None:
                timer.start("advance")
            try:
                next(gen)
            except StopIteration as stop:
                finished = True
                out_value = stop.value
                if track_halts:
                    for v in range(n):
                        obs.on_halt(round=rounds, node=v)

        advance()
        if timer is not None:
            obs.on_phases(round=0, seconds=timer.flush())

        while True:
            if finished and not ctx._has_pending():
                break
            if rounds >= clique.max_rounds:
                raise RoundLimitExceeded(clique.max_rounds)
            this_round = rounds + 1
            if timer is not None:
                timer.start("deliver")
            stats = self._deliver(
                ctx,
                this_round,
                injector=injector,
                per_message=per_message,
                explicit=explicit,
                obs=obs,
                records=records if record else None,
            )
            total_bits += stats.message_bits
            bulk_total += stats.bulk_bits
            sent_totals += stats.sent_bits
            received_totals += stats.received_bits
            rounds = this_round
            ctx.round = rounds
            if obs is not None:
                obs.on_round(
                    RoundStats(
                        this_round,
                        stats.unicast_messages,
                        stats.broadcast_messages,
                        stats.bulk_messages,
                        stats.message_bits,
                        stats.bulk_bits,
                        stats.sent_bits.tolist(),
                        stats.received_bits.tolist(),
                    )
                )
            if not finished:
                advance()
                if timer is not None:
                    obs.on_phases(round=this_round, seconds=timer.flush())
            elif timer is not None:
                obs.on_phases(round=this_round, seconds=timer.flush())

        outputs = _normalise_outputs(out_value, n)
        counters = tuple(
            {key: int(col[v]) for key, col in ctx._counters.items()}
            for v in range(n)
        )
        out_transcripts = None
        if record:
            out_transcripts = tuple(
                Transcript(node=v, n=n, rounds=tuple(records[v]))
                for v in range(n)
            )
        metrics = None
        if obs is not None:
            obs.on_run_end(rounds=rounds, counters=counters)
            metrics = obs.run_metrics()
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_message_bits=total_bits,
            bulk_bits=bulk_total,
            sent_bits=tuple(int(x) for x in sent_totals),
            received_bits=tuple(int(x) for x in received_totals),
            counters=counters,
            transcripts=out_transcripts,
            metrics=metrics,
        )

    # -- shard-parallel execution ----------------------------------------

    def _execute_sharded(
        self,
        clique,
        array: Callable,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        *,
        obs: Any,
        shard_count: int,
    ) -> RunResult:
        """Run a shardable array program across ``shard_count`` shards.

        Each shard advances its own instance of ``array`` over an owned
        node range; the coordinator concatenates the shard outboxes in
        shard order (equal to the single-instance emission columns by
        the shardable contract), validates and accounts them with the
        exact single-instance code, and routes each shard its owned
        destination slice — so outputs, rounds, bits and metrics are
        bit-identical to ``shards=None`` for every shard count.
        """
        # Lazy import: the service layer imports the engine package, so
        # the engine only reaches up at execute time.
        from ..service.kernel import spawn_columnar_shards

        n = clique.n
        bandwidth = clique.bandwidth
        pool = spawn_columnar_shards(
            array,
            n,
            bandwidth,
            inputs,
            auxes,
            check=self.check,
            count=shard_count,
            executor=self.executor or "process",
            transport=self.transport,
        )
        if obs is not None:
            obs.on_run_start(n=n, bandwidth=bandwidth, engine=self.name)

        rounds = 0
        total_bits = 0
        bulk_total = 0
        sent_totals = np.zeros(n, dtype=_I64)
        received_totals = np.zeros(n, dtype=_I64)
        outputs: dict[int, Any] = {}
        counter_cols: dict[str, np.ndarray] = {}
        ranges = pool.ranges
        count = len(ranges)
        finished = [False] * count
        empty_outbox = (
            _EMPTY_I, _EMPTY_U, _EMPTY_I,
            _EMPTY_I, _EMPTY_I, _EMPTY_U, _EMPTY_I,
        )
        outboxes: list = [(empty_outbox, [])] * count

        def absorb(index: int, reply) -> None:
            outboxes[index] = (reply.columns, reply.bulk)
            if reply.finished and not finished[index]:
                finished[index] = True
                lo, hi = ranges[index]
                for v, out in _normalise_outputs(reply.value, n).items():
                    if lo <= v < hi:
                        outputs[v] = out
                for key, col in (reply.counters or {}).items():
                    dest = counter_cols.get(key)
                    if dest is None:
                        dest = counter_cols[key] = np.zeros(n, dtype=_I64)
                    dest[lo:hi] = np.asarray(col, dtype=_I64)[lo:hi]

        try:
            for index, reply in enumerate(pool.first()):
                absorb(index, reply)
            while True:
                pending = any(
                    cols[0].size or cols[3].size or bulk
                    for cols, bulk in outboxes
                )
                if all(finished) and not pending:
                    break
                if rounds >= clique.max_rounds:
                    raise RoundLimitExceeded(clique.max_rounds)
                this_round = rounds + 1

                bs, bv, bw, us, ud, uv, uw, bulk = _concat_outboxes(outboxes)
                bs, bv, bw, us, ud, uv, uw = _validate_columns(
                    n, bandwidth, self.check,
                    bs, bv, bw, us, ud, uv, uw, bulk,
                )
                sent, received, msg_bits, bulk_bits = _sent_accounting(
                    n, bs, bw, us, uw, bulk
                )
                _fast_received(received, bs, bw, ud, uw)
                total_bits += msg_bits
                bulk_total += bulk_bits
                sent_totals += sent
                received_totals += received
                rounds = this_round
                if obs is not None:
                    obs.on_round(
                        RoundStats(
                            this_round,
                            int(us.size),
                            int(bs.size) * (n - 1),
                            len(bulk),
                            msg_bits,
                            bulk_bits,
                            sent.tolist(),
                            received.tolist(),
                        )
                    )

                outboxes = [(empty_outbox, [])] * count
                live = [i for i in range(count) if not finished[i]]
                if live:
                    slices = []
                    for index in live:
                        lo, hi = ranges[index]
                        if us.size:
                            owned = (ud >= lo) & (ud < hi)
                            coo = (us[owned], ud[owned], uv[owned], uw[owned])
                        else:
                            coo = (us, ud, uv, uw)
                        slices.append(
                            (coo, [t for t in bulk if lo <= t[1] < hi])
                        )
                    replies = pool.step(this_round, (bs, bv, bw), live, slices)
                    for index, reply in zip(live, replies):
                        absorb(index, reply)
        except BaseException:
            pool.close(kill=True)
            raise
        pool.close()

        counters = tuple(
            {key: int(col[v]) for key, col in counter_cols.items()}
            for v in range(n)
        )
        metrics = None
        if obs is not None:
            obs.on_run_end(rounds=rounds, counters=counters)
            metrics = obs.run_metrics()
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_message_bits=total_bits,
            bulk_bits=bulk_total,
            sent_bits=tuple(int(x) for x in sent_totals),
            received_bits=tuple(int(x) for x in received_totals),
            counters=counters,
            transcripts=None,
            metrics=metrics,
        )

    # -- delivery --------------------------------------------------------

    def _deliver(
        self,
        ctx: ArrayContext,
        this_round: int,
        *,
        injector: FaultInjector | None,
        per_message: bool,
        explicit: bool,
        obs: Any,
        records: list | None,
    ) -> RoundStats:
        """Validate, deliver and account one round's queued traffic."""
        n = ctx.n
        bs, bv, bw, us, ud, uv, uw = ctx._collect_outbox()
        bulk = ctx._bulk
        bs, bv, bw, us, ud, uv, uw = _validate_columns(
            n, ctx.bandwidth, self.check, bs, bv, bw, us, ud, uv, uw, bulk
        )

        sent, received, msg_bits, bulk_bits = _sent_accounting(
            n, bs, bw, us, uw, bulk
        )

        if explicit:
            coo, in_bulk = self._deliver_explicit(
                ctx,
                this_round,
                bs, bv, bw, us, ud, uv, uw,
                injector=injector,
                per_message=per_message,
                obs=obs,
                records=records,
                received=received,
            )
            ctx._in_bcast = (_EMPTY_I, _EMPTY_U, _EMPTY_I)
            ctx._in_coo = coo
            ctx._in_bulk = in_bulk
        else:
            # Fault-free fast path: delivery is the identity transpose of
            # the outbox columns; only the accounting needs computing.
            _fast_received(received, bs, bw, ud, uw)
            ctx._in_bcast = (bs, bv, bw)
            ctx._in_coo = (us, ud, uv, uw)
            ctx._in_bulk = list(bulk)

        stats = RoundStats(
            this_round,
            int(us.size),
            int(bs.size) * (n - 1),
            len(bulk),
            msg_bits,
            bulk_bits,
            sent,
            received,
        )
        ctx._clear_outbox()
        return stats

    def _deliver_explicit(
        self,
        ctx: ArrayContext,
        this_round: int,
        bs, bv, bw, us, ud, uv, uw,
        *,
        injector: FaultInjector | None,
        per_message: bool,
        obs: Any,
        records: list | None,
        received: np.ndarray,
    ):
        """Per-message delivery with reference-engine fault semantics."""
        n = ctx.n
        inboxes: list[dict[int, BitString]] = [{} for _ in range(n)]
        sent_records: list[dict[int, BitString]] = (
            [{} for _ in range(n)] if records is not None else []
        )
        if injector is not None:
            # Duplicate carryover first: a genuine same-link message wins.
            injector.inject_pending(this_round, inboxes, received)

        def one(src: int, dst: int, value: int, width: int, kind: str) -> None:
            payload = BitString(value, width)
            delivered = (
                payload
                if injector is None
                else injector.deliver(this_round, src, dst, payload)
            )
            if delivered is not None:
                received[dst] += width
                inboxes[dst][src] = delivered
            if records is not None:
                sent_records[src][dst] = payload
            if per_message and delivered is not None:
                obs.on_message(
                    round=this_round, src=src, dst=dst, bits=width, kind=kind
                )

        for i in range(bs.size):
            src, value, width = int(bs[i]), int(bv[i]), int(bw[i])
            for dst in range(n):
                if dst != src:
                    one(src, dst, value, width, "broadcast")
        for i in range(us.size):
            one(int(us[i]), int(ud[i]), int(uv[i]), int(uw[i]), "unicast")
        in_bulk: list[tuple[int, int, int, int]] = []
        for src, dst, value, width in ctx._bulk:
            in_bulk.append((src, dst, value, width))
            if records is not None:
                sent_records[src][dst] = BitString(value, width)
            if per_message:
                obs.on_message(
                    round=this_round, src=src, dst=dst, bits=width, kind="bulk"
                )
        if injector is not None:
            # Forged-identity messages land last, into slots no genuine
            # delivery claimed.  Bulk slots live outside ``inboxes``
            # here but are occupied inbox slots in the reference engine,
            # so shadow them while the forged buffer lands.
            shadow: list[tuple[int, int]] = []
            for src, dst, value, width in in_bulk:
                if src not in inboxes[dst]:
                    inboxes[dst][src] = BitString(value, width)
                    shadow.append((dst, src))
            injector.finish_round(this_round, inboxes, received)
            for dst, src in shadow:
                del inboxes[dst][src]
        if records is not None:
            bulk_in: list[dict[int, BitString]] = [{} for _ in range(n)]
            for src, dst, value, width in in_bulk:
                bulk_in[dst][src] = BitString(value, width)
            for v in range(n):
                records[v].append(
                    RoundRecord(
                        sent=sent_records[v],
                        received={**inboxes[v], **bulk_in[v]},
                    )
                )
        count = sum(len(box) for box in inboxes)
        src_col = np.empty(count, dtype=_I64)
        dst_col = np.empty(count, dtype=_I64)
        val_col = np.empty(count, dtype=_U64)
        wid_col = np.empty(count, dtype=_I64)
        i = 0
        for dst in range(n):
            for src, payload in inboxes[dst].items():
                src_col[i] = src
                dst_col[i] = dst
                val_col[i] = payload.value
                wid_col[i] = len(payload)
                i += 1
        return (src_col, dst_col, val_col, wid_col), in_bulk


def _concat_outboxes(outboxes: Sequence[tuple]) -> tuple:
    """Concatenate per-shard ``(columns, bulk)`` outboxes in shard order.

    By the shardable contract each program instance emits its owned
    block in ascending order, so shard-order concatenation reproduces
    the single-instance emission columns exactly.
    """
    bseg = [cols for cols, _bulk in outboxes if cols[0].size]
    useg = [cols for cols, _bulk in outboxes if cols[3].size]
    if len(bseg) == 1:
        bs, bv, bw = bseg[0][:3]
    elif bseg:
        bs = np.concatenate([s[0] for s in bseg])
        bv = np.concatenate([s[1] for s in bseg])
        bw = np.concatenate([s[2] for s in bseg])
    else:
        bs, bv, bw = _EMPTY_I, _EMPTY_U, _EMPTY_I
    if len(useg) == 1:
        us, ud, uv, uw = useg[0][3:]
    elif useg:
        us = np.concatenate([s[3] for s in useg])
        ud = np.concatenate([s[4] for s in useg])
        uv = np.concatenate([s[5] for s in useg])
        uw = np.concatenate([s[6] for s in useg])
    else:
        us, ud, uv, uw = _EMPTY_I, _EMPTY_I, _EMPTY_U, _EMPTY_I
    bulk: list = []
    for _cols, shard_bulk in outboxes:
        bulk.extend(shard_bulk)
    return bs, bv, bw, us, ud, uv, uw, bulk


def _validate_columns(
    n: int,
    bandwidth: int,
    check: str,
    bs, bv, bw, us, ud, uv, uw,
    bulk: list,
):
    """Apply a check level to one round's emission columns.

    Shared by the single-instance delivery path and the shard-parallel
    coordinator (which validates the *concatenated* shard columns, so
    the two paths raise identically on the same invalid traffic).
    Returns the possibly-deduplicated columns.
    """
    b = bandwidth
    if check == "off":
        return bs, bv, bw, us, ud, uv, uw
    # bandwidth: the per-link bit budget, on both segments.
    if bs.size:
        over = bw > b
        if over.any():
            i = _first(over)
            src = int(bs[i])
            raise BandwidthExceeded(
                src, 0 if src != 0 else 1, int(bw[i]), b
            )
    if us.size:
        over = uw > b
        if over.any():
            i = _first(over)
            raise BandwidthExceeded(int(us[i]), int(ud[i]), int(uw[i]), b)
    if check != "full":
        # Lax semantics: a repeated send to the same slot overwrites
        # (last write wins), matching the other backends' lax nodes.
        if us.size:
            us, ud, uv, uw = _dedup_last(n, us, ud, uv, uw)
        return bs, bv, bw, us, ud, uv, uw
    # full: addressing, empty payloads, duplicate slots.
    if bs.size:
        bad = (bs < 0) | (bs >= n)
        if bad.any():
            i = _first(bad)
            raise InvalidAddress(
                f"broadcast sender {int(bs[i])} out of range (n={n})"
            )
        empty = bw < 1
        if empty.any():
            i = _first(empty)
            raise ProtocolViolation(
                f"node {int(bs[i])} sent an empty message; "
                f"omit the send instead"
            )
        if np.unique(bs).size != bs.size:
            dup = int(bs[_first_duplicate(bs)])
            raise DuplicateMessage(dup, (dup + 1) % n)
    if us.size:
        bad = (ud < 0) | (ud >= n) | (us < 0) | (us >= n)
        if bad.any():
            i = _first(bad)
            raise InvalidAddress(
                f"node {int(us[i])} addressed nonexistent node "
                f"{int(ud[i])} (n={n})"
            )
        self_send = us == ud
        if self_send.any():
            i = _first(self_send)
            raise InvalidAddress(f"node {int(us[i])} addressed itself")
        empty = uw < 1
        if empty.any():
            i = _first(empty)
            raise ProtocolViolation(
                f"node {int(us[i])} sent an empty message to "
                f"{int(ud[i])}; omit the send instead"
            )
        keys = us * n + ud
        if np.unique(keys).size != keys.size:
            i = _first_duplicate(keys)
            raise DuplicateMessage(int(us[i]), int(ud[i]))
        if bs.size:
            clash = np.isin(us, bs)
            if clash.any():
                i = _first(clash)
                raise DuplicateMessage(int(us[i]), int(ud[i]))
    if bulk:
        seen = set()
        uni_slots = (
            set(zip(us.tolist(), ud.tolist())) if us.size else set()
        )
        bset = set(bs.tolist())
        for src, dst, _value, _width in bulk:
            if src == dst or not 0 <= dst < n or not 0 <= src < n:
                raise InvalidAddress(
                    f"bulk send {src} -> {dst} is invalid (n={n})"
                )
            if (src, dst) in seen or (src, dst) in uni_slots or src in bset:
                raise DuplicateMessage(src, dst)
            seen.add((src, dst))
    return bs, bv, bw, us, ud, uv, uw


def _sent_accounting(
    n: int, bs, bw, us, uw, bulk: list
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Sender-side bit accounting for one round's validated columns.

    Returns ``(sent, received, msg_bits, bulk_bits)`` with ``received``
    holding only the bulk-channel arrivals (message arrivals are added
    by :func:`_fast_received` on the fault-free path or per delivery on
    the explicit path).
    """
    sent = np.zeros(n, dtype=_I64)
    received = np.zeros(n, dtype=_I64)
    msg_bits = 0
    bulk_bits = 0
    if bs.size:
        per_sender = bw * (n - 1)
        msg_bits += int(per_sender.sum())
        sent[bs] += per_sender
    if us.size:
        msg_bits += int(uw.sum())
        np.add.at(sent, us, uw)
    for src, dst, _value, width in bulk:
        bulk_bits += width
        sent[src] += width
        received[dst] += width
    return sent, received, msg_bits, bulk_bits


def _fast_received(received: np.ndarray, bs, bw, ud, uw) -> None:
    """Receiver-side accounting when delivery is the identity transpose."""
    if bs.size:
        received += int(bw.sum())
        received[bs] -= bw
    if ud.size:
        np.add.at(received, ud, uw)


def _dedup_last(n: int, us, ud, uv, uw):
    """Collapse repeated (src, dst) slots keeping the last emission."""
    keys = us * n + ud
    unique, rev_index = np.unique(keys[::-1], return_index=True)
    if unique.size == keys.size:
        return us, ud, uv, uw
    sel = keys.size - 1 - rev_index
    return us[sel], ud[sel], uv[sel], uw[sel]


def _first_duplicate(keys: np.ndarray) -> int:
    """Index of the first repeated entry in ``keys``."""
    seen: set = set()
    for i, key in enumerate(keys.tolist()):
        if key in seen:
            return i
        seen.add(key)
    return 0  # pragma: no cover - caller guarantees a duplicate exists


def _normalise_outputs(value: Any, n: int) -> dict[int, Any]:
    """Per-node outputs from an array program's return value."""
    if value is None:
        return {v: None for v in range(n)}
    if isinstance(value, dict):
        return {int(v): out for v, out in value.items()}
    if isinstance(value, np.ndarray):
        if value.shape[:1] != (n,):
            raise CliqueError(
                f"array program returned an array of leading dimension "
                f"{value.shape[:1]}, expected ({n},)"
            )
        return {v: value[v] for v in range(n)}
    if isinstance(value, (list, tuple)):
        if len(value) != n:
            raise CliqueError(
                f"array program returned {len(value)} outputs for {n} nodes"
            )
        return {v: value[v] for v in range(n)}
    raise CliqueError(
        f"array program must return None, a mapping, or a length-n "
        f"sequence/array of per-node outputs, got {type(value).__name__}"
    )
