"""Multiprocess sweep runner.

The exponent-fitting experiments (E9–E12) and the CLI sweeps evaluate a
node program over an ``(n, seed, params)`` grid.  :func:`run_sweep` fans
those grid points across worker processes:

* the *factory* (a picklable, module-level callable) receives one config
  dict and returns a :class:`RunSpec` describing the run — graph
  generation and program construction happen inside the worker, so only
  ``(factory, config)`` crosses the process boundary;
* every config gets a deterministic seed (:func:`derive_seed`) unless it
  carries one already, so results are reproducible regardless of worker
  count or scheduling;
* an optional :class:`~repro.engine.cache.RunCache` makes re-running a
  sweep free: hits are returned without touching the pool.

Workers use the ``fork`` start method (required so factories defined in
scripts and test modules resolve); on platforms without ``fork``, or
when ``workers <= 1``, the sweep runs serially in-process with identical
results.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..clique.errors import CliqueError
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram, RunResult
from ..obs import Observer, describe_observer, summarise_metrics
from .base import Engine, resolve_engine
from .cache import RunCache, content_digest

__all__ = [
    "RunSpec",
    "SweepOutcome",
    "aggregate_sweep_metrics",
    "derive_seed",
    "run_spec",
    "run_sweep",
]


@dataclass
class RunSpec:
    """Everything needed to execute one run, as returned by a factory.

    ``n`` may be omitted when ``node_input`` is a
    :class:`~repro.clique.graph.CliqueGraph` (the graph's size is used).
    ``postprocess`` runs in the worker on the finished
    :class:`~repro.clique.network.RunResult`; its return value lands in
    :attr:`SweepOutcome.value` (use it to compute verdicts/witness checks
    without shipping large intermediates back to the parent).
    """

    program: NodeProgram
    node_input: Any = None
    aux: Any = None
    n: int | None = None
    bandwidth: int | None = None
    bandwidth_multiplier: int = 1
    max_rounds: int | None = None
    record_transcripts: bool = False
    postprocess: Callable[[RunResult], Any] | None = None

    def resolved_n(self) -> int:
        """The clique size, inferred from the graph input if not given."""
        if self.n is not None:
            return self.n
        if isinstance(self.node_input, CliqueGraph):
            return self.node_input.n
        raise CliqueError(
            "RunSpec needs an explicit n unless node_input is a CliqueGraph"
        )


@dataclass
class SweepOutcome:
    """One grid point's result.

    ``config`` is the (seed-augmented) input config; ``value`` is the
    spec's postprocess product, if any.
    """

    config: dict
    result: RunResult
    value: Any = None
    from_cache: bool = False


def derive_seed(base_seed: int, index: int, config: dict) -> int:
    """Deterministic per-task seed from the sweep seed, the grid index
    and the config content (stable across processes and Python runs)."""
    blob = json.dumps(
        [base_seed, index, config], sort_keys=True, default=repr
    ).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def run_spec(
    spec: RunSpec,
    engine: "str | Engine | None" = None,
    *,
    check: Any = None,
    observer: Any = None,
) -> tuple[RunResult, Any]:
    """Execute one :class:`RunSpec` on the given engine.

    ``check`` and ``observer`` follow :meth:`CongestedClique.run`
    semantics.  Returns ``(result, postprocess_value)``.
    """
    clique = CongestedClique(
        spec.resolved_n(),
        bandwidth=spec.bandwidth,
        bandwidth_multiplier=spec.bandwidth_multiplier,
        record_transcripts=spec.record_transcripts,
        max_rounds=spec.max_rounds,
    )
    result = clique.run(
        spec.program,
        spec.node_input,
        aux=spec.aux,
        engine=engine,
        check=check,
        observer=observer,
    )
    value = spec.postprocess(result) if spec.postprocess is not None else None
    return result, value


def _execute_point(
    task: tuple[Callable[[dict], RunSpec], dict, Any, Any],
) -> tuple[RunResult, Any]:
    """Worker entry point: build the spec from the config and run it."""
    factory, config, engine, observer = task
    return run_spec(factory(config), engine, observer=observer)


def _factory_name(factory: Callable) -> str:
    """Stable identifier of a factory for cache keys."""
    return (
        getattr(factory, "__module__", "?")
        + "."
        + getattr(factory, "__qualname__", repr(factory))
    )


def _point_key(
    cache: RunCache,
    factory: Callable,
    config: dict,
    engine_desc: dict,
    observer_desc: dict,
) -> str:
    """Cache key of one grid point (config determines the inputs)."""
    return cache.key_for(
        program=_factory_name(factory),
        n=config.get("n"),
        bandwidth=config.get("bandwidth", config.get("bandwidth_multiplier")),
        input_digest=content_digest(config),
        engine=engine_desc,
        observer=observer_desc,
    )


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def run_sweep(
    program_factory: Callable[[dict], RunSpec],
    configs: Iterable[dict],
    *,
    workers: int | None = None,
    engine: "str | Engine | None" = "fast",
    cache: RunCache | None = None,
    base_seed: int = 0,
    observer: Any = None,
) -> list[SweepOutcome]:
    """Run ``program_factory`` over every config, fanning across processes.

    Parameters
    ----------
    program_factory:
        Module-level callable ``config -> RunSpec``.  Must be picklable
        (workers import it by qualified name under ``fork``).
    configs:
        The grid: one dict per run.  Each config is copied and augmented
        with a deterministic ``"seed"`` entry when it has none.
    workers:
        Process count; ``None`` picks ``min(len(grid), cpu_count)``;
        values ``<= 1`` run serially in-process.
    engine:
        Engine name or instance used for every point (default: fast).
    cache:
        Optional :class:`~repro.engine.cache.RunCache`; hits skip
        execution entirely and are marked ``from_cache=True``.
    base_seed:
        Root of the deterministic per-task seed derivation.
    observer:
        Observer *spec* applied per run: ``None``/``True``/``"metrics"``
        (collect :class:`repro.obs.RunMetrics` into each outcome's
        ``result.metrics``; aggregate with
        :func:`aggregate_sweep_metrics`) or ``False``/``"off"``.
        Observer *instances* are rejected — a single stateful observer
        cannot be shared across worker processes; every run gets a
        fresh collector built from the spec instead.

    Results are returned in grid order regardless of scheduling.
    """
    if isinstance(observer, Observer):
        raise CliqueError(
            "run_sweep needs an observer spec (None, True, False, "
            "'metrics', 'off'), not an Observer instance: sweep points "
            "run in worker processes, each with its own fresh collector"
        )
    observer_desc = describe_observer(observer)
    points: list[dict] = []
    for index, config in enumerate(configs):
        config = dict(config)
        config.setdefault("seed", derive_seed(base_seed, index, config))
        points.append(config)

    engine_desc = resolve_engine(engine).describe()
    outcomes: list[SweepOutcome | None] = [None] * len(points)
    pending: list[tuple[int, dict]] = []
    for index, config in enumerate(points):
        if cache is not None:
            hit = cache.get(
                _point_key(
                    cache, program_factory, config, engine_desc, observer_desc
                )
            )
            if hit is not None:
                result, value = hit
                outcomes[index] = SweepOutcome(
                    config=config, result=result, value=value, from_cache=True
                )
                continue
        pending.append((index, config))

    if workers is None:
        workers = min(len(pending), os.cpu_count() or 1)
    tasks = [
        (program_factory, config, engine, observer) for _, config in pending
    ]
    results: list[tuple[RunResult, Any]]
    context = _fork_context() if workers > 1 and len(pending) > 1 else None
    if context is not None:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)), mp_context=context
            ) as pool:
                results = list(pool.map(_execute_point, tasks))
        except (pickle.PicklingError, AttributeError):
            # Unpicklable factory (e.g. a closure): degrade to serial.
            results = [_execute_point(task) for task in tasks]
    else:
        results = [_execute_point(task) for task in tasks]

    for (index, config), (result, value) in zip(pending, results):
        outcomes[index] = SweepOutcome(config=config, result=result, value=value)
        if cache is not None:
            cache.put(
                _point_key(
                    cache, program_factory, config, engine_desc, observer_desc
                ),
                (result, value),
            )
    return [outcome for outcome in outcomes if outcome is not None]


def aggregate_sweep_metrics(outcomes: Iterable[SweepOutcome]) -> dict:
    """Roll the per-run :class:`repro.obs.RunMetrics` of a sweep into one
    summary dict (see :func:`repro.obs.summarise_metrics`).

    Cross-worker aggregation works because each worker ships its run's
    metrics back inside the pickled ``RunResult``; outcomes from
    ``observer=False`` runs (``metrics is None``) are skipped.
    """
    return summarise_metrics(
        outcome.result.metrics for outcome in outcomes
    )
