"""Multiprocess sweep runner.

The exponent-fitting experiments (E9–E12) and the CLI sweeps evaluate a
node program over an ``(n, seed, params)`` grid.  :func:`run_sweep` fans
those grid points across worker processes:

* the *factory* (a picklable, module-level callable) receives one config
  dict and returns a :class:`RunSpec` describing the run — graph
  generation and program construction happen inside the worker, so only
  ``(factory, config)`` crosses the process boundary;
* every config gets a deterministic seed (:func:`derive_seed`) unless it
  carries one already, so results are reproducible regardless of worker
  count or scheduling;
* an optional :class:`~repro.engine.cache.RunCache` makes re-running a
  sweep free: hits are returned without touching the pool.

The benchmark suite (:mod:`repro.bench`) times sweeps through this same
entry point — the ``sweep/*`` workloads call :func:`run_sweep` directly
so the ratchet measures the code path experiments actually use.

Resilience: a sweep survives individual bad grid points.  A point that
raises is retried up to ``retries`` times with exponential backoff, then
marked ``failed=True`` on its :class:`SweepOutcome` (carrying a
:class:`~repro.clique.errors.SweepPointFailed`) while the rest of the
grid completes — or, with ``on_error="raise"``, aborts the sweep.  With
``timeout=`` the parent watches every in-flight point and kills (then
replaces) the worker holding a point past its deadline, so a hung point
cannot wedge the sweep.

Parallel sweeps run on a process-wide *persistent pool*
(:class:`PersistentPool`): warm ``fork`` workers that survive across
:func:`run_sweep` calls, so interpreter start-up and imports are paid
once per process rather than once per sweep.  Tasks cross the boundary
as explicit pickle-protocol-5 blobs and, without a timeout, ship in
chunks to amortise queue traffic.  ``fork`` is required so factories
defined in scripts and test modules resolve; on platforms without
``fork``, or when ``workers <= 1``, the sweep runs serially in-process
with identical results.  :func:`shutdown_pool` stops the warm workers
(they restart lazily on the next sweep).
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import queue as queue_mod
import time
import warnings
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable

from ..clique.errors import CliqueError, SweepPointFailed
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram, RunResult
from ..faults import resolve_fault_plan
from ..obs import Observer, summarise_metrics
from .base import Engine, resolve_engine
from .cache import RunCache, content_digest
from .spec import ExecutionSpec

__all__ = [
    "RunSpec",
    "SweepOutcome",
    "aggregate_sweep_metrics",
    "available_cpus",
    "derive_seed",
    "pool_stats",
    "run_spec",
    "run_sweep",
    "shutdown_pool",
]

#: Ceiling on one retry-backoff sleep, seconds.
_BACKOFF_CAP = 5.0


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup cpuset or ``taskset`` clamp the two disagree, and sizing a
    worker pool by the machine oversubscribes the allowed cores.  The
    scheduling affinity mask is the honest figure where the platform
    exposes it (Linux); elsewhere fall back to ``cpu_count``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - affinity query refused
            pass
    return os.cpu_count() or 1


@dataclass
class RunSpec:
    """Everything needed to execute one run, as returned by a factory.

    ``n`` may be omitted when ``node_input`` is a
    :class:`~repro.clique.graph.CliqueGraph` (the graph's size is used).
    ``postprocess`` runs in the worker on the finished
    :class:`~repro.clique.network.RunResult`; its return value lands in
    :attr:`SweepOutcome.value` (use it to compute verdicts/witness checks
    without shipping large intermediates back to the parent).
    ``fault_plan`` attaches a deterministic fault plan (spec string or
    :class:`~repro.faults.FaultPlan`) to every execution of this spec.
    """

    program: NodeProgram
    node_input: Any = None
    aux: Any = None
    n: int | None = None
    bandwidth: int | None = None
    bandwidth_multiplier: int = 1
    max_rounds: int | None = None
    record_transcripts: bool = False
    postprocess: Callable[[RunResult], Any] | None = None
    fault_plan: Any = None

    def resolved_n(self) -> int:
        """The clique size, inferred from the graph input if not given."""
        if self.n is not None:
            return self.n
        if isinstance(self.node_input, CliqueGraph):
            return self.node_input.n
        program = getattr(self.program, "__name__", None) or repr(self.program)
        raise CliqueError(
            f"RunSpec for {program!r} needs an explicit n unless node_input "
            f"is a CliqueGraph (node_input is "
            f"{type(self.node_input).__name__})"
        )


@dataclass
class SweepOutcome:
    """One grid point's result.

    ``config`` is the (seed-augmented) input config; ``value`` is the
    spec's postprocess product, if any.  A point that exhausted its
    retries (crash, hang past the timeout, protocol violation) has
    ``failed=True``, ``result=None`` and the
    :class:`~repro.clique.errors.SweepPointFailed` in ``error``.
    """

    config: dict
    result: RunResult | None
    value: Any = None
    from_cache: bool = False
    failed: bool = False
    error: SweepPointFailed | None = None


def derive_seed(base_seed: int, index: int, config: dict) -> int:
    """Deterministic per-task seed from the sweep seed, the grid index
    and the config content (stable across processes and Python runs)."""
    blob = json.dumps([base_seed, index, config], sort_keys=True, default=repr).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def run_spec(
    spec: RunSpec,
    engine: "str | Engine | None" = None,
    *,
    execution: Any = None,
    check: Any = None,
    observer: Any = None,
    fault_plan: Any = None,
) -> tuple[RunResult, Any]:
    """Execute one :class:`RunSpec` on the given engine.

    ``execution`` takes an :class:`~repro.engine.spec.ExecutionSpec`
    (or dict / engine-name shorthand); the per-field keywords follow
    :meth:`CongestedClique.run` semantics and may fill unset spec
    fields.  ``fault_plan=None`` falls back to the spec's own plan.
    Returns ``(result, postprocess_value)``.
    """
    clique = CongestedClique(
        spec.resolved_n(),
        bandwidth=spec.bandwidth,
        bandwidth_multiplier=spec.bandwidth_multiplier,
        record_transcripts=spec.record_transcripts,
        max_rounds=spec.max_rounds,
    )
    result = clique.run(
        spec.program,
        spec.node_input,
        aux=spec.aux,
        execution=execution,
        engine=engine,
        check=check,
        observer=observer,
        fault_plan=fault_plan if fault_plan is not None else spec.fault_plan,
    )
    value = spec.postprocess(result) if spec.postprocess is not None else None
    return result, value


def _execute_point(
    task: tuple[Callable[[dict], RunSpec], dict, Any, Any, Any],
) -> tuple[RunResult, Any]:
    """Worker entry point: build the spec from the config and run it."""
    factory, config, engine, observer, fault_plan = task
    return run_spec(factory(config), engine, observer=observer, fault_plan=fault_plan)


def _safe_execute_point(task: tuple) -> tuple[str, Any]:
    """Run one point with in-process retries; never raises.

    Returns ``("ok", (result, value))`` or ``("error", SweepPointFailed)``
    so a bad grid point cannot take down a pool worker (or the whole
    ``pool.map``) with it.
    """
    factory, config, engine, observer, fault_plan, index, retries, backoff = (task)
    attempt = 0
    while True:
        attempt += 1
        try:
            return "ok", _execute_point((factory, config, engine, observer, fault_plan))
        except Exception as exc:
            if attempt > retries:
                return "error", SweepPointFailed(
                    f"sweep point {index} (config {config!r}) failed after "
                    f"{attempt} attempt(s): {type(exc).__name__}: {exc}",
                    index=index,
                    config=config,
                )
            time.sleep(min(backoff * (1 << (attempt - 1)), _BACKOFF_CAP))


def _factory_name(factory: Callable) -> str:
    """Stable identifier of a factory for cache keys."""
    return (
        getattr(factory, "__module__", "?")
        + "."
        + getattr(factory, "__qualname__", repr(factory))
    )


def _point_key(
    cache: RunCache,
    factory: Callable,
    config: dict,
    engine_desc: dict,
    observer_desc: dict,
    fault_desc: "dict | None" = None,
) -> str:
    """Cache key of one grid point (config determines the inputs)."""
    return cache.key_for(
        program=_factory_name(factory),
        n=config.get("n"),
        bandwidth=config.get("bandwidth", config.get("bandwidth_multiplier")),
        input_digest=content_digest(config),
        engine=engine_desc,
        observer=observer_desc,
        extra=fault_desc,
    )


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _pool_worker_main(task_q: Any, result_q: Any) -> None:  # pragma: no cover
    # Child-process entry point (covered indirectly: runs post-fork).
    # Items are chunks: lists of (task_id, pickled-task) pairs; ``None``
    # is the shutdown sentinel.  Results stream back one per task so the
    # parent can rebalance and watch deadlines mid-chunk.
    while True:
        item = task_q.get()
        if item is None:
            return
        for task_id, blob in item:
            try:
                task = pickle.loads(blob)
            except BaseException as exc:
                # Stale fork: the factory's module is not importable in
                # this worker (e.g. it was defined after the pool warmed
                # up).  The parent respawns a fresh worker and retries.
                result_q.put((task_id, "load-error", f"{type(exc).__name__}: {exc}"))
                continue
            status, payload = _safe_execute_point(task)
            try:
                out = pickle.dumps((status, payload), protocol=5)
            except Exception as exc:
                out = pickle.dumps(
                    (
                        "error",
                        SweepPointFailed(
                            f"sweep point result could not be pickled: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    ),
                    protocol=5,
                )
            result_q.put((task_id, "done", out))


class _PoolWorker:
    """One warm worker process with its own task and result queues.

    Per-worker queues keep failure domains separate: killing a hung
    worker can only corrupt its own result pipe (discarded with it),
    never a neighbour's pending results.
    """

    __slots__ = ("proc", "task_q", "result_q", "outstanding")

    def __init__(self, context: Any) -> None:
        self.task_q = context.Queue()
        self.result_q = context.Queue()
        #: task_id -> deadline (monotonic seconds) or None.
        self.outstanding: dict[int, float | None] = {}
        self.proc = context.Process(
            target=_pool_worker_main,
            args=(self.task_q, self.result_q),
            daemon=True,
        )
        self.proc.start()

    def kill(self) -> None:
        self.proc.terminate()
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - terminate ignored
            self.proc.kill()
            self.proc.join(timeout=5.0)

    def retire(self) -> None:
        """Ask the worker to exit after draining its queue."""
        try:
            self.task_q.put(None)
        except (OSError, ValueError):  # pragma: no cover - queue torn down
            self.kill()


@dataclass
class _PoolJob:
    """Parent-side state of one grid point travelling through the pool."""

    slot: int  # position in the pending list (result ordering)
    index: int  # grid index (error messages)
    config: dict
    blob: bytes
    attempt: int = 0
    load_errors: int = 0
    eligible_at: float = 0.0


class PersistentPool:
    """A reusable pool of warm ``fork`` worker processes.

    Workers outlive a single :func:`run_sweep` call: interpreter
    start-up and imports are paid once, then every sweep dispatches
    pickled ``(factory, config)`` tasks (pickle protocol 5) to whatever
    subset of workers it needs.  Without a timeout, tasks ship in
    chunks and each worker retries failures in-process; with a timeout,
    tasks go one at a time so the parent can kill a worker at its
    deadline and respawn a fresh one for the retry.
    """

    def __init__(self, context: Any) -> None:
        self._context = context
        self._workers: list[_PoolWorker] = []
        self._task_counter = 0

    @property
    def size(self) -> int:
        return len(self._workers)

    def ensure(self, size: int) -> None:
        """Grow (never shrink) the pool to at least ``size`` live workers."""
        self._workers = [w for w in self._workers if w.proc.is_alive()]
        while len(self._workers) < size:
            self._workers.append(_PoolWorker(self._context))

    def shutdown(self) -> None:
        for worker in self._workers:
            worker.retire()
        for worker in self._workers:
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.kill()
        self._workers = []

    def _replace(self, position: int, *, kill: bool) -> None:
        worker = self._workers[position]
        if kill:
            worker.kill()
        else:
            worker.retire()
        self._workers[position] = _PoolWorker(self._context)

    def run(
        self,
        jobs: "list[_PoolJob]",
        *,
        max_workers: int,
        timeout: float | None,
        retries: int,
        backoff: float,
    ) -> list[tuple[str, Any]]:
        """Run every job; returns ``(status, payload)`` pairs by slot.

        Without ``timeout``, child-side retries have already been baked
        into the task blobs, so any ``"error"`` coming back is final.
        With ``timeout``, the children run single attempts and the
        retry/backoff/deadline loop lives here (each attempt needs a
        fresh deadline, and a kill needs a fresh worker).
        """
        self.ensure(max_workers)
        ready: deque[_PoolJob] = deque(jobs)
        waiting: list[_PoolJob] = []
        results: dict[int, tuple[str, Any]] = {}
        in_flight: dict[int, _PoolJob] = {}
        chunk = 1
        if timeout is None:
            chunk = max(1, min(16, -(-len(jobs) // (max_workers * 4))))

        def finish(job: _PoolJob, status: str, payload: Any) -> None:
            results[job.slot] = (status, payload)

        def retry_or_fail(job: _PoolJob, kind: str, detail: Any) -> None:
            job.attempt += 1
            if timeout is not None and job.attempt <= retries:
                job.eligible_at = time.monotonic() + min(
                    backoff * (1 << (job.attempt - 1)), _BACKOFF_CAP
                )
                waiting.append(job)
                return
            if kind == "timeout":
                finish(
                    job,
                    "error",
                    SweepPointFailed(
                        f"sweep point {job.index} (config {job.config!r}) "
                        f"exceeded the {timeout:g}s timeout on all "
                        f"{job.attempt} attempt(s) and was killed",
                        index=job.index,
                        config=job.config,
                    ),
                )
            else:  # kind == "died"
                finish(
                    job,
                    "error",
                    SweepPointFailed(
                        f"sweep point {job.index} (config {job.config!r}) "
                        f"worker died without a result (exit code "
                        f"{detail}) on attempt {job.attempt}",
                        index=job.index,
                        config=job.config,
                    ),
                )

        def handle_done(job: _PoolJob, blob: bytes) -> None:
            status, payload = pickle.loads(blob)
            if status == "ok" or timeout is None:
                # Chunk mode: the child already ran the retry loop and
                # wrapped the final error; nothing to add here.
                finish(job, status, payload)
                return
            job.attempt += 1
            if job.attempt <= retries:
                job.eligible_at = time.monotonic() + min(
                    backoff * (1 << (job.attempt - 1)), _BACKOFF_CAP
                )
                waiting.append(job)
                return
            if job.attempt > 1:
                finish(
                    job,
                    "error",
                    SweepPointFailed(
                        f"{payload} [{job.attempt} guarded attempt(s) total]",
                        index=job.index,
                        config=job.config,
                    ),
                )
            else:
                finish(job, "error", payload)

        while len(results) < len(jobs):
            now = time.monotonic()
            progressed = False
            if waiting:
                still: list[_PoolJob] = []
                for job in waiting:
                    if job.eligible_at <= now:
                        ready.append(job)
                    else:
                        still.append(job)
                waiting[:] = still
            for position in range(min(max_workers, len(self._workers))):
                worker = self._workers[position]
                # Drain whatever this worker has finished.
                try:
                    while True:
                        task_id, kind, payload = worker.result_q.get_nowait()
                        worker.outstanding.pop(task_id, None)
                        job = in_flight.pop(task_id, None)
                        progressed = True
                        if job is None:  # pragma: no cover - stale result
                            continue
                        if kind == "done":
                            handle_done(job, payload)
                        else:  # "load-error": stale fork, respawn + retry
                            job.load_errors += 1
                            if job.load_errors > 2:
                                finish(
                                    job,
                                    "error",
                                    SweepPointFailed(
                                        f"sweep point {job.index} (config "
                                        f"{job.config!r}) could not be "
                                        f"loaded in a pool worker: {payload}",
                                        index=job.index,
                                        config=job.config,
                                    ),
                                )
                            else:
                                ready.appendleft(job)
                            self._replace(position, kill=False)
                            worker = self._workers[position]
                except queue_mod.Empty:
                    pass
                if worker.outstanding:
                    if not worker.proc.is_alive():
                        # Hard death (e.g. segfault): every task still
                        # assigned to this worker is charged one attempt.
                        exitcode = worker.proc.exitcode
                        for task_id in list(worker.outstanding):
                            job = in_flight.pop(task_id, None)
                            if job is not None:
                                retry_or_fail(job, "died", exitcode)
                        worker.outstanding.clear()
                        self._replace(position, kill=True)
                        progressed = True
                    elif timeout is not None:
                        task_id, deadline = next(iter(worker.outstanding.items()))
                        if deadline is not None and now >= deadline:
                            job = in_flight.pop(task_id, None)
                            worker.outstanding.clear()
                            self._replace(position, kill=True)
                            if job is not None:
                                retry_or_fail(job, "timeout", None)
                            progressed = True
                    continue
                if not ready:
                    continue
                # Idle worker + ready jobs: dispatch the next chunk.
                batch: list[tuple[int, bytes]] = []
                deadline = now + timeout if timeout is not None else None
                while ready and len(batch) < chunk:
                    job = ready.popleft()
                    task_id = self._task_counter
                    self._task_counter += 1
                    in_flight[task_id] = job
                    worker.outstanding[task_id] = deadline
                    batch.append((task_id, job.blob))
                worker.task_q.put(batch)
                progressed = True
            if not progressed:
                time.sleep(0.003)
        return [results[slot] for slot in range(len(jobs))]


_WARM_POOL: "PersistentPool | None" = None


def _warm_pool(context: Any) -> PersistentPool:
    """The process-wide warm pool, created on first use."""
    global _WARM_POOL
    if _WARM_POOL is None:
        _WARM_POOL = PersistentPool(context)
    return _WARM_POOL


def shutdown_pool() -> None:
    """Stop the warm sweep worker pool (it restarts lazily on next use)."""
    global _WARM_POOL
    if _WARM_POOL is not None:
        _WARM_POOL.shutdown()
        _WARM_POOL = None


# Registered at import time, not at first pool use: a sweep that crashes
# between warming the pool and registering a hook could otherwise leak
# forked workers past the parent's exit.
atexit.register(shutdown_pool)


def pool_stats() -> dict:
    """State of the process-wide warm pool as a JSON-able dict.

    ``workers`` counts pool processes (live or not yet reaped), ``alive``
    the ones still running; both are 0 when no sweep has warmed the pool
    (or after :func:`shutdown_pool`).
    """
    pool = _WARM_POOL
    if pool is None:
        return {"warm": False, "workers": 0, "alive": 0}
    return {
        "warm": True,
        "workers": pool.size,
        "alive": sum(1 for w in pool._workers if w.proc.is_alive()),
    }


def run_sweep(
    program_factory: Callable[[dict], RunSpec],
    configs: Iterable[dict],
    *,
    workers: int | None = None,
    engine: "str | Engine | None" = "fast",
    execution: Any = None,
    cache: RunCache | None = None,
    base_seed: int = 0,
    observer: Any = None,
    fault_plan: Any = None,
    timeout: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.1,
    on_error: str = "fail",
) -> list[SweepOutcome]:
    """Run ``program_factory`` over every config, fanning across processes.

    Parameters
    ----------
    program_factory:
        Module-level callable ``config -> RunSpec``.  Must be picklable
        (workers import it by qualified name under ``fork``).
    configs:
        The grid: one dict per run.  Each config is copied and augmented
        with a deterministic ``"seed"`` entry when it has none.
    workers:
        Process count; ``None`` picks ``min(len(grid), cpu_count)``;
        values ``<= 1`` run serially in-process (except with
        ``timeout``, where the deadline kill needs a separate worker
        process).
    engine:
        Engine name or instance used for every point (default: fast).
    execution:
        An :class:`~repro.engine.spec.ExecutionSpec` (or dict /
        engine-name shorthand) bundling engine, check level, observer
        and fault plan.  The per-field keywords may fill unset spec
        fields; a field set both ways must agree.  The sweep default
        engine (``"fast"``) applies only when neither the spec nor the
        ``engine`` keyword names one.  ``transcripts`` is rejected here
        — per-run transcript recording belongs on
        :attr:`RunSpec.record_transcripts`.
    cache:
        Optional :class:`~repro.engine.cache.RunCache`; hits skip
        execution entirely and are marked ``from_cache=True``.  Failed
        points are never cached.
    base_seed:
        Root of the deterministic per-task seed derivation.
    observer:
        Observer *spec* applied per run: ``None``/``True``/``"metrics"``
        (collect :class:`repro.obs.RunMetrics` into each outcome's
        ``result.metrics``; aggregate with
        :func:`aggregate_sweep_metrics`) or ``False``/``"off"``.
        Observer *instances* are rejected — a single stateful observer
        cannot be shared across worker processes; every run gets a
        fresh collector built from the spec instead.
    fault_plan:
        Deterministic fault plan (spec string like ``"drop=0.1,seed=7"``
        or a :class:`~repro.faults.FaultPlan`) applied to every point;
        enters the cache key so faulty and fault-free sweeps never mix.
    timeout:
        Per-point wall-clock deadline in seconds.  Each attempt runs on
        a pool worker that is killed and replaced at the deadline
        (requires the ``fork`` start method; without it the guard
        degrades to unguarded execution with a warning).
    retries:
        How many times a failing point is retried (crash or timeout)
        before being marked failed; total attempts = ``retries + 1``.
    retry_backoff:
        Base sleep between attempts, doubled each retry and capped at
        a few seconds.
    on_error:
        ``"fail"`` (default) marks exhausted points ``failed=True`` and
        keeps sweeping; ``"raise"`` aborts the sweep by raising the
        point's :class:`~repro.clique.errors.SweepPointFailed`.

    Results are returned in grid order regardless of scheduling.
    """
    exec_spec = ExecutionSpec.coerce(execution)
    if exec_spec.engine is not None and engine == "fast":
        engine = None  # the sweep default yields to an explicit spec
    exec_spec = exec_spec.merged(
        engine=engine, observer=observer, fault_plan=fault_plan
    )
    if exec_spec.transcripts is not None:
        raise CliqueError(
            "run_sweep does not take transcripts on the ExecutionSpec; "
            "set RunSpec.record_transcripts in the factory instead"
        )
    if exec_spec.engine is None:
        exec_spec = replace(exec_spec, engine="fast")
    engine = exec_spec.engine
    if exec_spec.check is not None or exec_spec.shards is not None:
        engine = resolve_engine(
            engine, check=exec_spec.check, shards=exec_spec.shards
        )
    observer = exec_spec.observer
    fault_plan = exec_spec.fault_plan
    if isinstance(observer, Observer):
        raise CliqueError(
            "run_sweep needs an observer spec (None, True, False, "
            "'metrics', 'off'), not an Observer instance: sweep points "
            "run in worker processes, each with its own fresh collector"
        )
    if on_error not in ("fail", "raise"):
        raise CliqueError(f"on_error must be 'fail' or 'raise', not {on_error!r}")
    if retries < 0:
        raise CliqueError(f"retries must be >= 0, not {retries}")
    if timeout is not None and timeout <= 0:
        raise CliqueError(f"timeout must be positive, not {timeout}")
    if retry_backoff < 0:
        raise CliqueError(f"retry_backoff must be >= 0, not {retry_backoff}")
    plan = resolve_fault_plan(fault_plan)
    # One spec, one key: the cache-key components come from the merged
    # spec's canonical description, which matches what the legacy
    # keyword path always produced — warmed caches stay valid.
    key_desc = exec_spec.describe()
    engine_desc = key_desc["engine"]
    observer_desc = key_desc["observer"]
    fault_desc = key_desc["fault_plan"]
    points: list[dict] = []
    for index, config in enumerate(configs):
        config = dict(config)
        config.setdefault("seed", derive_seed(base_seed, index, config))
        points.append(config)

    outcomes: list[SweepOutcome | None] = [None] * len(points)
    pending: list[tuple[int, dict]] = []
    for index, config in enumerate(points):
        if cache is not None:
            hit = cache.get(
                _point_key(
                    cache,
                    program_factory,
                    config,
                    engine_desc,
                    observer_desc,
                    fault_desc,
                )
            )
            if hit is not None:
                result, value = hit
                outcomes[index] = SweepOutcome(
                    config=config, result=result, value=value, from_cache=True
                )
                continue
        pending.append((index, config))

    if workers is None:
        workers = min(len(pending), available_cpus())
    tasks = [
        (
            program_factory,
            config,
            engine,
            observer,
            plan,
            index,
            retries,
            retry_backoff,
        )
        for index, config in pending
    ]
    statuses: list[tuple[str, Any]]
    context = _fork_context()
    if context is None:  # pragma: no cover - non-POSIX platforms
        if timeout is not None:
            warnings.warn(
                "per-point timeouts need the 'fork' start method; running "
                "without a timeout guard",
                RuntimeWarning,
                stacklevel=2,
            )
        statuses = [_safe_execute_point(task) for task in tasks]
    elif not pending or (timeout is None and (workers <= 1 or len(pending) <= 1)):
        # Serial in-process: same results, no processes.  A timeout
        # always goes through the pool (the deadline kill needs a
        # separate process), even for a single point or worker.
        statuses = [_safe_execute_point(task) for task in tasks]
    else:
        # With a timeout the children run single attempts and the
        # parent owns the retry loop (each retry needs a fresh deadline
        # and possibly a fresh worker after a kill).
        child_retries = 0 if timeout is not None else retries
        jobs: list[_PoolJob] = []
        try:
            for slot, (index, config) in enumerate(pending):
                blob = pickle.dumps(
                    (
                        program_factory,
                        config,
                        engine,
                        observer,
                        plan,
                        index,
                        child_retries,
                        retry_backoff,
                    ),
                    protocol=5,
                )
                jobs.append(
                    _PoolJob(slot=slot, index=index, config=config, blob=blob)
                )
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # Unpicklable factory (e.g. a closure): degrade to serial.
            warnings.warn(
                f"sweep factory {_factory_name(program_factory)} (or its"
                f" configs) is not picklable"
                f" ({type(exc).__name__}: {exc}); running"
                f" {len(tasks)} pending point(s) serially in-process",
                RuntimeWarning,
                stacklevel=2,
            )
            statuses = [_safe_execute_point(task) for task in tasks]
        else:
            statuses = _warm_pool(context).run(
                jobs,
                max_workers=max(1, min(workers, len(pending))),
                timeout=timeout,
                retries=retries,
                backoff=retry_backoff,
            )

    for (index, config), (status, payload) in zip(pending, statuses):
        if status == "ok":
            result, value = payload
            outcomes[index] = SweepOutcome(config=config, result=result, value=value)
            if cache is not None:
                cache.put(
                    _point_key(
                        cache,
                        program_factory,
                        config,
                        engine_desc,
                        observer_desc,
                        fault_desc,
                    ),
                    (result, value),
                )
        else:
            error = payload
            if on_error == "raise":
                raise error
            outcomes[index] = SweepOutcome(
                config=config, result=None, failed=True, error=error
            )
    return [outcome for outcome in outcomes if outcome is not None]


def aggregate_sweep_metrics(outcomes: Iterable[SweepOutcome]) -> dict:
    """Roll the per-run :class:`repro.obs.RunMetrics` of a sweep into one
    summary dict (see :func:`repro.obs.summarise_metrics`).

    Cross-worker aggregation works because each worker ships its run's
    metrics back inside the pickled ``RunResult``; outcomes from
    ``observer=False`` runs (``metrics is None``) and failed points
    (``result is None``) are skipped.  When the sweep had failures the
    summary gains ``failed_points`` / ``failed_indices`` keys; a
    fully-successful sweep's summary shape is unchanged.
    """
    outcomes = list(outcomes)
    summary = summarise_metrics(
        outcome.result.metrics
        for outcome in outcomes
        if outcome.result is not None
    )
    failed = [outcome for outcome in outcomes if outcome.failed]
    if failed:
        summary["failed_points"] = len(failed)
        summary["failed_indices"] = sorted(
            outcome.error.index
            for outcome in failed
            if outcome.error is not None and outcome.error.index is not None
        )
    return summary
