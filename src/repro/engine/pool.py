"""Multiprocess sweep runner.

The exponent-fitting experiments (E9–E12) and the CLI sweeps evaluate a
node program over an ``(n, seed, params)`` grid.  :func:`run_sweep` fans
those grid points across worker processes:

* the *factory* (a picklable, module-level callable) receives one config
  dict and returns a :class:`RunSpec` describing the run — graph
  generation and program construction happen inside the worker, so only
  ``(factory, config)`` crosses the process boundary;
* every config gets a deterministic seed (:func:`derive_seed`) unless it
  carries one already, so results are reproducible regardless of worker
  count or scheduling;
* an optional :class:`~repro.engine.cache.RunCache` makes re-running a
  sweep free: hits are returned without touching the pool.

The benchmark suite (:mod:`repro.bench`) times sweeps through this same
entry point — the ``sweep/*`` workloads call :func:`run_sweep` directly
so the ratchet measures the code path experiments actually use.

Resilience: a sweep survives individual bad grid points.  A point that
raises is retried up to ``retries`` times with exponential backoff, then
marked ``failed=True`` on its :class:`SweepOutcome` (carrying a
:class:`~repro.clique.errors.SweepPointFailed`) while the rest of the
grid completes — or, with ``on_error="raise"``, aborts the sweep.  With
``timeout=`` each point runs in its own watched child process and is
killed at the deadline, so a hung point cannot wedge the sweep.

Workers use the ``fork`` start method (required so factories defined in
scripts and test modules resolve); on platforms without ``fork``, or
when ``workers <= 1``, the sweep runs serially in-process with identical
results.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import queue as queue_mod
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..clique.errors import CliqueError, SweepPointFailed
from ..clique.graph import CliqueGraph
from ..clique.network import CongestedClique, NodeProgram, RunResult
from ..faults import resolve_fault_plan
from ..obs import Observer, describe_observer, summarise_metrics
from .base import Engine, resolve_engine
from .cache import RunCache, content_digest

__all__ = [
    "RunSpec",
    "SweepOutcome",
    "aggregate_sweep_metrics",
    "derive_seed",
    "run_spec",
    "run_sweep",
]

#: Ceiling on one retry-backoff sleep, seconds.
_BACKOFF_CAP = 5.0


@dataclass
class RunSpec:
    """Everything needed to execute one run, as returned by a factory.

    ``n`` may be omitted when ``node_input`` is a
    :class:`~repro.clique.graph.CliqueGraph` (the graph's size is used).
    ``postprocess`` runs in the worker on the finished
    :class:`~repro.clique.network.RunResult`; its return value lands in
    :attr:`SweepOutcome.value` (use it to compute verdicts/witness checks
    without shipping large intermediates back to the parent).
    ``fault_plan`` attaches a deterministic fault plan (spec string or
    :class:`~repro.faults.FaultPlan`) to every execution of this spec.
    """

    program: NodeProgram
    node_input: Any = None
    aux: Any = None
    n: int | None = None
    bandwidth: int | None = None
    bandwidth_multiplier: int = 1
    max_rounds: int | None = None
    record_transcripts: bool = False
    postprocess: Callable[[RunResult], Any] | None = None
    fault_plan: Any = None

    def resolved_n(self) -> int:
        """The clique size, inferred from the graph input if not given."""
        if self.n is not None:
            return self.n
        if isinstance(self.node_input, CliqueGraph):
            return self.node_input.n
        program = getattr(self.program, "__name__", None) or repr(self.program)
        raise CliqueError(
            f"RunSpec for {program!r} needs an explicit n unless node_input "
            f"is a CliqueGraph (node_input is "
            f"{type(self.node_input).__name__})"
        )


@dataclass
class SweepOutcome:
    """One grid point's result.

    ``config`` is the (seed-augmented) input config; ``value`` is the
    spec's postprocess product, if any.  A point that exhausted its
    retries (crash, hang past the timeout, protocol violation) has
    ``failed=True``, ``result=None`` and the
    :class:`~repro.clique.errors.SweepPointFailed` in ``error``.
    """

    config: dict
    result: RunResult | None
    value: Any = None
    from_cache: bool = False
    failed: bool = False
    error: SweepPointFailed | None = None


def derive_seed(base_seed: int, index: int, config: dict) -> int:
    """Deterministic per-task seed from the sweep seed, the grid index
    and the config content (stable across processes and Python runs)."""
    blob = json.dumps([base_seed, index, config], sort_keys=True, default=repr).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def run_spec(
    spec: RunSpec,
    engine: "str | Engine | None" = None,
    *,
    check: Any = None,
    observer: Any = None,
    fault_plan: Any = None,
) -> tuple[RunResult, Any]:
    """Execute one :class:`RunSpec` on the given engine.

    ``check``, ``observer`` and ``fault_plan`` follow
    :meth:`CongestedClique.run` semantics; ``fault_plan=None`` falls back
    to the spec's own plan.  Returns ``(result, postprocess_value)``.
    """
    clique = CongestedClique(
        spec.resolved_n(),
        bandwidth=spec.bandwidth,
        bandwidth_multiplier=spec.bandwidth_multiplier,
        record_transcripts=spec.record_transcripts,
        max_rounds=spec.max_rounds,
    )
    result = clique.run(
        spec.program,
        spec.node_input,
        aux=spec.aux,
        engine=engine,
        check=check,
        observer=observer,
        fault_plan=fault_plan if fault_plan is not None else spec.fault_plan,
    )
    value = spec.postprocess(result) if spec.postprocess is not None else None
    return result, value


def _execute_point(
    task: tuple[Callable[[dict], RunSpec], dict, Any, Any, Any],
) -> tuple[RunResult, Any]:
    """Worker entry point: build the spec from the config and run it."""
    factory, config, engine, observer, fault_plan = task
    return run_spec(factory(config), engine, observer=observer, fault_plan=fault_plan)


def _safe_execute_point(task: tuple) -> tuple[str, Any]:
    """Run one point with in-process retries; never raises.

    Returns ``("ok", (result, value))`` or ``("error", SweepPointFailed)``
    so a bad grid point cannot take down a pool worker (or the whole
    ``pool.map``) with it.
    """
    factory, config, engine, observer, fault_plan, index, retries, backoff = (task)
    attempt = 0
    while True:
        attempt += 1
        try:
            return "ok", _execute_point((factory, config, engine, observer, fault_plan))
        except Exception as exc:
            if attempt > retries:
                return "error", SweepPointFailed(
                    f"sweep point {index} (config {config!r}) failed after "
                    f"{attempt} attempt(s): {type(exc).__name__}: {exc}",
                    index=index,
                    config=config,
                )
            time.sleep(min(backoff * (1 << (attempt - 1)), _BACKOFF_CAP))


def _factory_name(factory: Callable) -> str:
    """Stable identifier of a factory for cache keys."""
    return (
        getattr(factory, "__module__", "?")
        + "."
        + getattr(factory, "__qualname__", repr(factory))
    )


def _point_key(
    cache: RunCache,
    factory: Callable,
    config: dict,
    engine_desc: dict,
    observer_desc: dict,
    fault_desc: "dict | None" = None,
) -> str:
    """Cache key of one grid point (config determines the inputs)."""
    return cache.key_for(
        program=_factory_name(factory),
        n=config.get("n"),
        bandwidth=config.get("bandwidth", config.get("bandwidth_multiplier")),
        input_digest=content_digest(config),
        engine=engine_desc,
        observer=observer_desc,
        extra=fault_desc,
    )


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _guarded_entry(task: tuple, result_queue: Any) -> None:  # pragma: no cover
    # Child-process entry point (covered indirectly: runs post-fork).
    result_queue.put(_safe_execute_point(task))


def _run_point_guarded(task: tuple, timeout: float, context: Any) -> tuple[str, Any]:
    """One attempt in a watched child process with a hard deadline.

    Returns ``("ok", ...)``/``("error", ...)`` from the child, or
    ``("timeout", None)`` / ``("died", exitcode)`` when it produced no
    result.
    """
    result_queue = context.Queue()
    proc = context.Process(
        target=_guarded_entry, args=(task, result_queue), daemon=True
    )
    proc.start()
    deadline = time.monotonic() + timeout
    payload = None
    got = False
    while True:
        remaining = deadline - time.monotonic()
        try:
            # Drain the queue before joining: a child blocked writing a
            # large result into a full pipe buffer never exits on its
            # own, so the result must be consumed first.
            payload = result_queue.get(timeout=max(0.0, min(remaining, 0.05)))
            got = True
            break
        except queue_mod.Empty:
            if not proc.is_alive():
                break
            if remaining <= 0:
                break
    if got:
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - child wedged post-result
            proc.terminate()
        return payload
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - terminate ignored
            proc.kill()
            proc.join(timeout=5.0)
        return "timeout", None
    exitcode = proc.exitcode
    proc.join()
    return "died", exitcode


def _run_point_guarded_with_retries(
    base_task: tuple,
    index: int,
    config: dict,
    timeout: float,
    retries: int,
    backoff: float,
    context: Any,
) -> tuple[str, Any]:
    """Retry loop around :func:`_run_point_guarded`.

    Retries live in the parent here (each attempt needs a fresh child
    and a fresh deadline), so the child runs with ``retries=0``.
    """
    attempt = 0
    while True:
        attempt += 1
        status, payload = _run_point_guarded(
            base_task + (index, 0, backoff), timeout, context
        )
        if status == "ok":
            return status, payload
        if attempt <= retries:
            time.sleep(min(backoff * (1 << (attempt - 1)), _BACKOFF_CAP))
            continue
        if status == "timeout":
            return "error", SweepPointFailed(
                f"sweep point {index} (config {config!r}) exceeded the "
                f"{timeout:g}s timeout on all {attempt} attempt(s) and was "
                f"killed",
                index=index,
                config=config,
            )
        if status == "died":
            return "error", SweepPointFailed(
                f"sweep point {index} (config {config!r}) worker died "
                f"without a result (exit code {payload}) on attempt "
                f"{attempt}",
                index=index,
                config=config,
            )
        # "error" from the child, already wrapped; note parent retries.
        if attempt > 1:
            return "error", SweepPointFailed(
                f"{payload} [{attempt} guarded attempt(s) total]",
                index=index,
                config=config,
            )
        return status, payload


def run_sweep(
    program_factory: Callable[[dict], RunSpec],
    configs: Iterable[dict],
    *,
    workers: int | None = None,
    engine: "str | Engine | None" = "fast",
    cache: RunCache | None = None,
    base_seed: int = 0,
    observer: Any = None,
    fault_plan: Any = None,
    timeout: float | None = None,
    retries: int = 0,
    retry_backoff: float = 0.1,
    on_error: str = "fail",
) -> list[SweepOutcome]:
    """Run ``program_factory`` over every config, fanning across processes.

    Parameters
    ----------
    program_factory:
        Module-level callable ``config -> RunSpec``.  Must be picklable
        (workers import it by qualified name under ``fork``).
    configs:
        The grid: one dict per run.  Each config is copied and augmented
        with a deterministic ``"seed"`` entry when it has none.
    workers:
        Process count; ``None`` picks ``min(len(grid), cpu_count)``;
        values ``<= 1`` run serially in-process.  Ignored when
        ``timeout`` is set (guarded points run serially, one watched
        child at a time).
    engine:
        Engine name or instance used for every point (default: fast).
    cache:
        Optional :class:`~repro.engine.cache.RunCache`; hits skip
        execution entirely and are marked ``from_cache=True``.  Failed
        points are never cached.
    base_seed:
        Root of the deterministic per-task seed derivation.
    observer:
        Observer *spec* applied per run: ``None``/``True``/``"metrics"``
        (collect :class:`repro.obs.RunMetrics` into each outcome's
        ``result.metrics``; aggregate with
        :func:`aggregate_sweep_metrics`) or ``False``/``"off"``.
        Observer *instances* are rejected — a single stateful observer
        cannot be shared across worker processes; every run gets a
        fresh collector built from the spec instead.
    fault_plan:
        Deterministic fault plan (spec string like ``"drop=0.1,seed=7"``
        or a :class:`~repro.faults.FaultPlan`) applied to every point;
        enters the cache key so faulty and fault-free sweeps never mix.
    timeout:
        Per-point wall-clock deadline in seconds.  Each attempt runs in
        its own watched child process and is killed at the deadline
        (requires the ``fork`` start method; without it the guard
        degrades to unguarded execution with a warning).
    retries:
        How many times a failing point is retried (crash or timeout)
        before being marked failed; total attempts = ``retries + 1``.
    retry_backoff:
        Base sleep between attempts, doubled each retry and capped at
        a few seconds.
    on_error:
        ``"fail"`` (default) marks exhausted points ``failed=True`` and
        keeps sweeping; ``"raise"`` aborts the sweep by raising the
        point's :class:`~repro.clique.errors.SweepPointFailed`.

    Results are returned in grid order regardless of scheduling.
    """
    if isinstance(observer, Observer):
        raise CliqueError(
            "run_sweep needs an observer spec (None, True, False, "
            "'metrics', 'off'), not an Observer instance: sweep points "
            "run in worker processes, each with its own fresh collector"
        )
    if on_error not in ("fail", "raise"):
        raise CliqueError(f"on_error must be 'fail' or 'raise', not {on_error!r}")
    if retries < 0:
        raise CliqueError(f"retries must be >= 0, not {retries}")
    if timeout is not None and timeout <= 0:
        raise CliqueError(f"timeout must be positive, not {timeout}")
    if retry_backoff < 0:
        raise CliqueError(f"retry_backoff must be >= 0, not {retry_backoff}")
    plan = resolve_fault_plan(fault_plan)
    fault_desc = plan.describe() if plan is not None else None
    observer_desc = describe_observer(observer)
    points: list[dict] = []
    for index, config in enumerate(configs):
        config = dict(config)
        config.setdefault("seed", derive_seed(base_seed, index, config))
        points.append(config)

    engine_desc = resolve_engine(engine).describe()
    outcomes: list[SweepOutcome | None] = [None] * len(points)
    pending: list[tuple[int, dict]] = []
    for index, config in enumerate(points):
        if cache is not None:
            hit = cache.get(
                _point_key(
                    cache,
                    program_factory,
                    config,
                    engine_desc,
                    observer_desc,
                    fault_desc,
                )
            )
            if hit is not None:
                result, value = hit
                outcomes[index] = SweepOutcome(
                    config=config, result=result, value=value, from_cache=True
                )
                continue
        pending.append((index, config))

    if workers is None:
        workers = min(len(pending), os.cpu_count() or 1)
    tasks = [
        (
            program_factory,
            config,
            engine,
            observer,
            plan,
            index,
            retries,
            retry_backoff,
        )
        for index, config in pending
    ]
    statuses: list[tuple[str, Any]]
    if timeout is not None:
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            warnings.warn(
                "per-point timeouts need the 'fork' start method; running "
                "without a timeout guard",
                RuntimeWarning,
                stacklevel=2,
            )
            statuses = [_safe_execute_point(task) for task in tasks]
        else:
            statuses = [
                _run_point_guarded_with_retries(
                    (program_factory, config, engine, observer, plan),
                    index,
                    config,
                    timeout,
                    retries,
                    retry_backoff,
                    context,
                )
                for index, config in pending
            ]
    else:
        context = _fork_context() if workers > 1 and len(pending) > 1 else None
        if context is not None:
            from concurrent.futures import ProcessPoolExecutor

            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)), mp_context=context
                ) as pool:
                    statuses = list(pool.map(_safe_execute_point, tasks))
            except (pickle.PicklingError, AttributeError) as exc:
                # Unpicklable factory (e.g. a closure): degrade to serial.
                warnings.warn(
                    f"sweep factory {_factory_name(program_factory)} (or its"
                    f" configs) is not picklable"
                    f" ({type(exc).__name__}: {exc}); running"
                    f" {len(tasks)} pending point(s) serially in-process",
                    RuntimeWarning,
                    stacklevel=2,
                )
                statuses = [_safe_execute_point(task) for task in tasks]
        else:
            statuses = [_safe_execute_point(task) for task in tasks]

    for (index, config), (status, payload) in zip(pending, statuses):
        if status == "ok":
            result, value = payload
            outcomes[index] = SweepOutcome(config=config, result=result, value=value)
            if cache is not None:
                cache.put(
                    _point_key(
                        cache,
                        program_factory,
                        config,
                        engine_desc,
                        observer_desc,
                        fault_desc,
                    ),
                    (result, value),
                )
        else:
            error = payload
            if on_error == "raise":
                raise error
            outcomes[index] = SweepOutcome(
                config=config, result=None, failed=True, error=error
            )
    return [outcome for outcome in outcomes if outcome is not None]


def aggregate_sweep_metrics(outcomes: Iterable[SweepOutcome]) -> dict:
    """Roll the per-run :class:`repro.obs.RunMetrics` of a sweep into one
    summary dict (see :func:`repro.obs.summarise_metrics`).

    Cross-worker aggregation works because each worker ships its run's
    metrics back inside the pickled ``RunResult``; outcomes from
    ``observer=False`` runs (``metrics is None``) and failed points
    (``result is None``) are skipped.  When the sweep had failures the
    summary gains ``failed_points`` / ``failed_indices`` keys; a
    fully-successful sweep's summary shape is unchanged.
    """
    outcomes = list(outcomes)
    summary = summarise_metrics(
        outcome.result.metrics
        for outcome in outcomes
        if outcome.result is not None
    )
    failed = [outcome for outcome in outcomes if outcome.failed]
    if failed:
        summary["failed_points"] = len(failed)
        summary["failed_indices"] = sorted(
            outcome.error.index
            for outcome in failed
            if outcome.error is not None and outcome.error.index is not None
        )
    return summary
