"""Differential checking between execution backends.

The reference engine is the semantic ground truth; every other backend
must produce identical ``RunResult.outputs`` and ``rounds`` on valid
programs.  This module provides

* :data:`CATALOG` — named spec builders covering the library's
  algorithm families (broadcast/gather, BFS, APSP, matrix
  multiplication, k-dominating set, k-vertex cover, subgraph detection,
  sorting, k-independent set), each parameterised by a config dict with
  ``n``/``seed``/problem parameters;
* :func:`catalog_factory` — a picklable sweep factory dispatching on
  ``config["algorithm"]`` (usable directly with
  :func:`~repro.engine.pool.run_sweep`, and the source of the
  ``catalog/*`` workloads in :mod:`repro.bench`);
* :func:`diff_engines` / :func:`assert_engines_agree` — run one spec on
  several backends and compare outputs, round counts and bit totals;
* :func:`diff_resilient` — run catalog algorithms wrapped in the
  :func:`repro.faults.resilient` ack/retransmit layer under a lossy
  :class:`~repro.faults.FaultPlan` and check the outputs still match a
  fault-free reference run (:data:`RESILIENT_CATALOG` names the
  message-passing subset the wrapper supports — no bulk channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..clique.errors import CliqueError
from ..clique.network import RunResult, _outputs_equal
from .base import Engine
from .pool import RunSpec, run_spec

__all__ = [
    "CATALOG",
    "EngineDiff",
    "RESILIENT_CATALOG",
    "assert_engines_agree",
    "catalog_factory",
    "diff_catalog",
    "diff_engines",
    "diff_resilient",
]


# ---------------------------------------------------------------------------
# Algorithm catalog: name -> (config -> RunSpec)
# ---------------------------------------------------------------------------


def _graph(config: dict, default_p: float = 0.3):
    from ..problems import generators as gen

    return gen.random_graph(
        int(config.get("n", 9)),
        float(config.get("p", default_p)),
        int(config.get("seed", 0)),
    )


def _spec_broadcast(config: dict) -> RunSpec:
    """Whole-graph gathering: every node learns the adjacency matrix."""
    from ..algorithms import gather_graph

    def prog(node):
        adj = yield from gather_graph(node)
        return adj

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


def _spec_bfs(config: dict) -> RunSpec:
    """BFS distances from node 0."""
    from ..algorithms import bfs_distances

    def prog(node):
        return (yield from bfs_distances(node))

    return RunSpec(
        program=prog,
        node_input=_graph(config),
        aux=int(config.get("source", 0)),
        bandwidth_multiplier=2,
    )


def _spec_apsp(config: dict) -> RunSpec:
    """APSP by repeated (min,+) squaring over the cube-partitioned MM."""
    from ..algorithms import apsp_minplus
    from ..problems import generators as gen

    max_weight = int(config.get("max_weight", 15))
    g = gen.random_weighted_graph(
        int(config.get("n", 8)),
        float(config.get("p", 0.4)),
        max_weight,
        int(config.get("seed", 0)),
    )

    def prog(node):
        return (yield from apsp_minplus(node))

    # Dict aux must be wrapped: a bare Mapping is resolved per-node.
    return RunSpec(
        program=prog,
        node_input=g,
        aux=lambda v: {"max_weight": max_weight},
        bandwidth_multiplier=2,
    )


def _spec_matmul(config: dict) -> RunSpec:
    """Integer matrix product; node i holds rows A[i], B[i], returns C[i]."""
    from ..algorithms import RING, distributed_matmul
    from ..problems import generators as gen

    n = int(config.get("n", 8))
    max_entry = int(config.get("max_entry", 8))
    rng = gen.rng_from(int(config.get("seed", 0)))
    a = rng.integers(0, max_entry, (n, n)).astype(np.int64)
    b = rng.integers(0, max_entry, (n, n)).astype(np.int64)
    rows = [(a[i].copy(), b[i].copy()) for i in range(n)]

    def prog(node):
        a_row, b_row = node.input
        row = yield from distributed_matmul(node, a_row, b_row, RING, max_entry)
        return row

    return RunSpec(program=prog, node_input=rows, n=n, bandwidth_multiplier=2)


def _spec_kds(config: dict) -> RunSpec:
    """Theorem 9: k-dominating set detection."""
    from ..algorithms import k_dominating_set

    k = int(config.get("k", 2))

    def prog(node):
        return (yield from k_dominating_set(node, k))

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


def _spec_kvc(config: dict) -> RunSpec:
    """Theorem 11: k-vertex cover in O(k) rounds."""
    from ..algorithms import k_vertex_cover

    k = int(config.get("k", 3))

    def prog(node):
        return (yield from k_vertex_cover(node, k))

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


def _spec_subgraph(config: dict) -> RunSpec:
    """Dolev et al. subgraph detection (triangles)."""
    from ..algorithms import triangle_detection

    def prog(node):
        return (yield from triangle_detection(node))

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


def _spec_kis(config: dict) -> RunSpec:
    """k-independent-set detection (the Theorem 10 source problem)."""
    from ..algorithms import k_independent_set_detection

    k = int(config.get("k", 3))

    def prog(node):
        return (yield from k_independent_set_detection(node, k))

    return RunSpec(
        program=prog,
        node_input=_graph(config, default_p=0.4),
        bandwidth_multiplier=2,
    )


def _spec_sorting(config: dict) -> RunSpec:
    """Distributed sorting of per-node key lists."""
    from ..clique.sorting import distributed_sort
    from ..problems import generators as gen

    n = int(config.get("n", 8))
    key_width = int(config.get("key_width", 10))
    keys_per_node = int(config.get("keys_per_node", 3))
    rng = gen.rng_from(int(config.get("seed", 0)))
    keys = [
        [int(x) for x in rng.integers(0, 1 << key_width, size=keys_per_node)]
        for _ in range(n)
    ]

    def prog(node):
        return (yield from distributed_sort(node, node.input, key_width))

    return RunSpec(program=prog, node_input=keys, n=n, bandwidth_multiplier=2)


#: Named spec builders: algorithm name -> (config -> RunSpec).
CATALOG: dict[str, Callable[[dict], RunSpec]] = {
    "broadcast": _spec_broadcast,
    "bfs": _spec_bfs,
    "apsp": _spec_apsp,
    "matmul": _spec_matmul,
    "kds": _spec_kds,
    "kvc": _spec_kvc,
    "subgraph": _spec_subgraph,
    "kis": _spec_kis,
    "sorting": _spec_sorting,
}


def catalog_factory(config: dict) -> RunSpec:
    """Sweep factory dispatching on ``config["algorithm"]``.

    Module-level and picklable, so it can be handed straight to
    :func:`~repro.engine.pool.run_sweep` from any process.
    """
    name = config.get("algorithm")
    try:
        builder = CATALOG[name]
    except KeyError:
        raise CliqueError(
            f"unknown catalog algorithm {name!r}; known: {sorted(CATALOG)}"
        ) from None
    return builder(config)


# ---------------------------------------------------------------------------
# Differential checking
# ---------------------------------------------------------------------------


@dataclass
class EngineDiff:
    """Comparison of one run across several backends."""

    label: str
    engines: tuple[str, ...]
    rounds: dict[str, int] = field(default_factory=dict)
    total_message_bits: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every backend agreed on outputs and round counts."""
        return not self.mismatches

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            rounds = next(iter(self.rounds.values()), 0)
            return f"{self.label}: {'/'.join(self.engines)} agree ({rounds} rounds)"
        return f"{self.label}: MISMATCH — " + "; ".join(self.mismatches)


def _engine_label(engine: "str | Engine | None") -> str:
    if engine is None:
        return "reference"
    if isinstance(engine, Engine):
        return engine.name
    return str(engine)


def diff_engines(
    factory: Callable[[dict], RunSpec],
    config: dict,
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    label: str | None = None,
) -> EngineDiff:
    """Run one grid point on every backend and compare the results.

    The spec is rebuilt from ``factory(config)`` for each backend so no
    state leaks between runs.  Outputs are compared node by node with
    the same numpy-tolerant equality ``RunResult.common_output`` uses;
    round counts and total message/bulk bits must match exactly.
    """
    names = tuple(_engine_label(e) for e in engines)
    report = EngineDiff(
        label=label or config.get("algorithm", "program"), engines=names
    )
    results: dict[str, RunResult] = {}
    for engine, name in zip(engines, names):
        result, _ = run_spec(factory(dict(config)), engine)
        results[name] = result
        report.rounds[name] = result.rounds
        report.total_message_bits[name] = result.total_message_bits

    baseline_name = names[0]
    baseline = results[baseline_name]
    for name in names[1:]:
        other = results[name]
        if other.rounds != baseline.rounds:
            report.mismatches.append(
                f"rounds: {baseline_name}={baseline.rounds} {name}={other.rounds}"
            )
        if sorted(other.outputs) != sorted(baseline.outputs):
            report.mismatches.append(
                f"output nodes differ: {baseline_name}={sorted(baseline.outputs)} "
                f"{name}={sorted(other.outputs)}"
            )
            continue
        for v in sorted(baseline.outputs):
            if not _outputs_equal(baseline.outputs[v], other.outputs[v]):
                report.mismatches.append(
                    f"node {v} output: {baseline_name}={baseline.outputs[v]!r} "
                    f"{name}={other.outputs[v]!r}"
                )
        if other.total_message_bits != baseline.total_message_bits:
            report.mismatches.append(
                f"message bits: {baseline_name}={baseline.total_message_bits} "
                f"{name}={other.total_message_bits}"
            )
        if other.bulk_bits != baseline.bulk_bits:
            report.mismatches.append(
                f"bulk bits: {baseline_name}={baseline.bulk_bits} "
                f"{name}={other.bulk_bits}"
            )
    return report


def assert_engines_agree(
    factory: Callable[[dict], RunSpec],
    config: dict,
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    label: str | None = None,
) -> EngineDiff:
    """:func:`diff_engines`, raising :class:`CliqueError` on any mismatch."""
    report = diff_engines(factory, config, engines=engines, label=label)
    if not report.ok:
        raise CliqueError(report.summary())
    return report


#: Catalog algorithms compatible with the :func:`repro.faults.resilient`
#: wrapper: pure message-passing, no cost-model bulk channel (the
#: wrapper's 3-bit frame header lives inside the per-link budget, so
#: bulk sends are rejected).
RESILIENT_CATALOG: tuple[str, ...] = ("bfs", "broadcast", "kvc")


def diff_resilient(
    names: Sequence[str] | None = None,
    config: dict | None = None,
    *,
    fault_plan: "str | object" = "drop=0.2",
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    timeout: int = 2,
    max_attempts: int = 8,
    backoff_cap: int = 8,
) -> list[EngineDiff]:
    """Differentially verify the resilience layer under injected faults.

    For each named algorithm the fault-free reference run is the ground
    truth; the same program wrapped in :func:`repro.faults.resilient` is
    then executed under ``fault_plan`` on every backend, and the outputs
    must match node for node.  Round counts and bit totals legitimately
    grow (the ack/retransmit protocol pays for masking the faults), so
    the report records them per backend — next to the ``"fault-free"``
    baseline — without treating the growth as a mismatch.

    ``names`` defaults to :data:`RESILIENT_CATALOG`; algorithms using
    the bulk channel are incompatible with the wrapper and will raise.
    """
    from ..faults import resilient

    reports = []
    for name in names if names is not None else RESILIENT_CATALOG:
        point = dict(config or {})
        point["algorithm"] = name
        engine_names = tuple(_engine_label(e) for e in engines)
        report = EngineDiff(label=f"resilient:{name}", engines=engine_names)
        baseline, _ = run_spec(catalog_factory(dict(point)), "reference")
        report.rounds["fault-free"] = baseline.rounds
        report.total_message_bits["fault-free"] = baseline.total_message_bits
        for engine, engine_name in zip(engines, engine_names):
            spec = catalog_factory(dict(point))
            spec.program = resilient(
                spec.program,
                timeout=timeout,
                max_attempts=max_attempts,
                backoff_cap=backoff_cap,
            )
            result, _ = run_spec(spec, engine, fault_plan=fault_plan)
            report.rounds[engine_name] = result.rounds
            report.total_message_bits[engine_name] = result.total_message_bits
            if sorted(result.outputs) != sorted(baseline.outputs):
                report.mismatches.append(
                    f"output nodes differ: fault-free="
                    f"{sorted(baseline.outputs)} "
                    f"{engine_name}={sorted(result.outputs)}"
                )
                continue
            for v in sorted(baseline.outputs):
                if not _outputs_equal(baseline.outputs[v], result.outputs[v]):
                    report.mismatches.append(
                        f"node {v} output: fault-free="
                        f"{baseline.outputs[v]!r} "
                        f"{engine_name}={result.outputs[v]!r}"
                    )
        reports.append(report)
    return reports


def diff_catalog(
    names: Sequence[str] | None = None,
    config: dict | None = None,
    engines: Sequence["str | Engine"] = ("reference", "fast"),
) -> list[EngineDiff]:
    """Differentially check every named catalog algorithm.

    ``config`` supplies shared overrides (``n``, ``seed``, ...); each
    algorithm keeps its own defaults otherwise.
    """
    reports = []
    for name in names if names is not None else sorted(CATALOG):
        point = dict(config or {})
        point["algorithm"] = name
        reports.append(
            diff_engines(catalog_factory, point, engines=engines, label=name)
        )
    return reports
