"""Differential checking between execution backends.

The reference engine is the semantic ground truth; every other backend
must produce identical ``RunResult.outputs`` and ``rounds`` on valid
programs.  This module provides

* :data:`CATALOG` — named spec builders covering the library's
  algorithm families (broadcast/gather, BFS, APSP, matrix
  multiplication, k-dominating set, k-vertex cover, subgraph detection,
  sorting, k-independent set), each parameterised by a config dict with
  ``n``/``seed``/problem parameters;
* :func:`catalog_factory` — a picklable sweep factory dispatching on
  ``config["algorithm"]`` (usable directly with
  :func:`~repro.engine.pool.run_sweep`, and the source of the
  ``catalog/*`` workloads in :mod:`repro.bench`);
* :func:`diff_engines` / :func:`assert_engines_agree` — run one spec on
  several backends and compare outputs, round counts and bit totals;
* :func:`diff_resilient` — run catalog algorithms wrapped in the
  :func:`repro.faults.resilient` ack/retransmit layer under a lossy
  :class:`~repro.faults.FaultPlan` and check the outputs still match a
  fault-free reference run (:data:`RESILIENT_CATALOG` names the
  message-passing subset the wrapper supports — no bulk channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..clique.errors import CliqueError, did_you_mean
from ..clique.network import RunResult, _outputs_equal
from .base import Engine
from .pool import RunSpec, run_spec

__all__ = [
    "CATALOG",
    "COLUMNAR_CATALOG",
    "COST_DECLARATIONS",
    "EngineDiff",
    "NATIVE_RESILIENT",
    "RESILIENT_CATALOG",
    "algorithm",
    "assert_engines_agree",
    "catalog_factory",
    "diff_catalog",
    "diff_columnar",
    "diff_engines",
    "diff_resilient",
]


# ---------------------------------------------------------------------------
# Algorithm catalog: name -> (config -> RunSpec)
# ---------------------------------------------------------------------------

#: Named spec builders: algorithm name -> (config -> RunSpec).  Populated
#: by the :func:`algorithm` decorator below.
CATALOG: dict[str, Callable[[dict], RunSpec]] = {}

#: Catalog entries whose :class:`~repro.engine.columnar.DualProgram`
#: carries a columnar form, i.e. the set :func:`diff_columnar` gates.
COLUMNAR_CATALOG: tuple[str, ...] = ()

#: Analytic-twin declarations: catalog entry name -> the
#: :mod:`repro.analysis.symbolic` cost-model name it is accountable to.
#: Populated by the ``cost=`` key of the :func:`algorithm` decorator;
#: ``validate_symbolic()`` and the coverage test require every declared
#: name to resolve to a registered :class:`~repro.analysis.symbolic.CostModel`.
COST_DECLARATIONS: dict[str, str] = {}


def algorithm(
    name: str, *, columnar: bool = False, cost: str | None = None
) -> Callable[[Callable[[dict], RunSpec]], Callable[[dict], RunSpec]]:
    """Register a catalog entry: ``@algorithm("name")`` on a spec builder.

    ``columnar=True`` declares that the builder's program is a
    :class:`~repro.engine.columnar.DualProgram` carrying both the
    generator form and a columnar array form, adding the entry to
    :data:`COLUMNAR_CATALOG` so the columnar differential gate picks it
    up automatically.

    ``cost`` names the entry's analytic twin — the symbolic
    :class:`~repro.analysis.symbolic.CostModel` whose closed forms must
    reproduce this builder's metered rounds and bits exactly (defaults
    to the entry's own name).  Recorded in :data:`COST_DECLARATIONS`;
    enforced by ``repro predict --validate`` and the CI symbolic-gate.
    """

    def register(builder: Callable[[dict], RunSpec]) -> Callable[[dict], RunSpec]:
        global COLUMNAR_CATALOG
        if name in CATALOG:
            raise CliqueError(f"catalog algorithm {name!r} already registered")
        CATALOG[name] = builder
        COST_DECLARATIONS[name] = cost or name
        if columnar:
            COLUMNAR_CATALOG = COLUMNAR_CATALOG + (name,)
        return builder

    return register


def _graph(config: dict, default_p: float = 0.3):
    from ..problems import generators as gen

    return gen.random_graph(
        int(config.get("n", 9)),
        float(config.get("p", default_p)),
        int(config.get("seed", 0)),
    )


@algorithm("broadcast")
def _spec_broadcast(config: dict) -> RunSpec:
    """Whole-graph gathering: every node learns the adjacency matrix."""
    from ..algorithms import gather_graph

    def prog(node):
        adj = yield from gather_graph(node)
        return adj

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


@algorithm("bfs")
def _spec_bfs(config: dict) -> RunSpec:
    """BFS distances from node 0."""
    from ..algorithms import bfs_distances

    def prog(node):
        return (yield from bfs_distances(node))

    return RunSpec(
        program=prog,
        node_input=_graph(config),
        aux=int(config.get("source", 0)),
        bandwidth_multiplier=2,
    )


@algorithm("apsp")
def _spec_apsp(config: dict) -> RunSpec:
    """APSP by repeated (min,+) squaring over the cube-partitioned MM."""
    from ..algorithms import apsp_minplus
    from ..problems import generators as gen

    max_weight = int(config.get("max_weight", 15))
    g = gen.random_weighted_graph(
        int(config.get("n", 8)),
        float(config.get("p", 0.4)),
        max_weight,
        int(config.get("seed", 0)),
    )

    def prog(node):
        return (yield from apsp_minplus(node))

    # Dict aux must be wrapped: a bare Mapping is resolved per-node.
    return RunSpec(
        program=prog,
        node_input=g,
        aux=lambda v: {"max_weight": max_weight},
        bandwidth_multiplier=2,
    )


@algorithm("matmul", columnar=True)
def _spec_matmul(config: dict) -> RunSpec:
    """Integer matrix product; node i holds rows A[i], B[i], returns C[i]."""
    from ..algorithms import RING, distributed_matmul
    from ..problems import generators as gen

    n = int(config.get("n", 8))
    max_entry = int(config.get("max_entry", 8))
    rng = gen.rng_from(int(config.get("seed", 0)))
    a = rng.integers(0, max_entry, (n, n)).astype(np.int64)
    b = rng.integers(0, max_entry, (n, n)).astype(np.int64)
    rows = [(a[i].copy(), b[i].copy()) for i in range(n)]

    def prog(node):
        a_row, b_row = node.input
        row = yield from distributed_matmul(node, a_row, b_row, RING, max_entry)
        return row

    from ..algorithms.columnar import matmul_array
    from .columnar import DualProgram

    return RunSpec(
        program=DualProgram(prog, matmul_array, "matmul"),
        node_input=rows,
        aux=lambda v: {"max_entry": max_entry, "scheme": "lenzen"},
        n=n,
        bandwidth_multiplier=2,
    )


@algorithm("kds")
def _spec_kds(config: dict) -> RunSpec:
    """Theorem 9: k-dominating set detection."""
    from ..algorithms import k_dominating_set

    k = int(config.get("k", 2))

    def prog(node):
        return (yield from k_dominating_set(node, k))

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


@algorithm("kvc")
def _spec_kvc(config: dict) -> RunSpec:
    """Theorem 11: k-vertex cover in O(k) rounds."""
    from ..algorithms import k_vertex_cover

    k = int(config.get("k", 3))

    def prog(node):
        return (yield from k_vertex_cover(node, k))

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


@algorithm("subgraph")
def _spec_subgraph(config: dict) -> RunSpec:
    """Dolev et al. subgraph detection (triangles)."""
    from ..algorithms import triangle_detection

    def prog(node):
        return (yield from triangle_detection(node))

    return RunSpec(program=prog, node_input=_graph(config), bandwidth_multiplier=2)


@algorithm("kis")
def _spec_kis(config: dict) -> RunSpec:
    """k-independent-set detection (the Theorem 10 source problem)."""
    from ..algorithms import k_independent_set_detection

    k = int(config.get("k", 3))

    def prog(node):
        return (yield from k_independent_set_detection(node, k))

    return RunSpec(
        program=prog,
        node_input=_graph(config, default_p=0.4),
        bandwidth_multiplier=2,
    )


@algorithm("sorting", columnar=True)
def _spec_sorting(config: dict) -> RunSpec:
    """Distributed sorting of per-node key lists."""
    from ..clique.sorting import distributed_sort
    from ..problems import generators as gen

    n = int(config.get("n", 8))
    key_width = int(config.get("key_width", 10))
    keys_per_node = int(config.get("keys_per_node", 3))
    rng = gen.rng_from(int(config.get("seed", 0)))
    keys = [
        [int(x) for x in rng.integers(0, 1 << key_width, size=keys_per_node)]
        for _ in range(n)
    ]

    def prog(node):
        return (yield from distributed_sort(node, node.input, key_width))

    from ..algorithms.columnar import sorting_array
    from .columnar import DualProgram

    return RunSpec(
        program=DualProgram(prog, sorting_array, "sorting"),
        node_input=keys,
        aux=lambda v: {"key_width": key_width, "scheme": "lenzen"},
        n=n,
        bandwidth_multiplier=2,
    )


@algorithm("fanout", columnar=True)
def _spec_fanout(config: dict) -> RunSpec:
    """All-to-all broadcast stress: R rounds of evolving broadcasts.

    Each node's output is ``(messages received, xor fold of received
    values)``, so the result is sensitive to every single delivery —
    the entry the fault-plan parity diff leans on.
    """
    from ..algorithms.columnar import fanout_array, fanout_generator
    from .columnar import DualProgram

    n = int(config.get("n", 8))
    rounds = int(config.get("rounds", 3))
    seed = int(config.get("seed", 0))
    inputs = [(seed * 7919 + 31 * v + 1) for v in range(n)]
    return RunSpec(
        program=DualProgram(fanout_generator, fanout_array, "fanout"),
        node_input=inputs,
        aux=rounds,
        n=n,
        bandwidth_multiplier=int(config.get("bandwidth_multiplier", 2)),
    )


@algorithm("fanout_work", columnar=True)
def _spec_fanout_work(config: dict) -> RunSpec:
    """Compute-heavy fan-out: lane mixing plus k-regular ring digests.

    The shard-parallel stress entry — per-node hidden uint64 lane state
    mixed ``passes`` times per round (the work extra cores split),
    digests unicast to the ``min(8, n-1)`` next ring neighbours, and an
    output folding every delivery *and* the final lane state.
    """
    from ..algorithms.columnar import (
        fanout_work_array,
        fanout_work_generator,
    )
    from .columnar import DualProgram

    n = int(config.get("n", 8))
    seed = int(config.get("seed", 0))
    aux = {
        "rounds": int(config.get("rounds", 3)),
        "state": int(config.get("state", 16)),
        "passes": int(config.get("passes", 2)),
    }
    inputs = [(seed * 7919 + 31 * v + 1) for v in range(n)]
    return RunSpec(
        program=DualProgram(
            fanout_work_generator, fanout_work_array, "fanout_work"
        ),
        node_input=inputs,
        aux=lambda v: dict(aux),
        n=n,
        bandwidth_multiplier=int(config.get("bandwidth_multiplier", 2)),
    )


@algorithm("routing", columnar=True)
def _spec_routing(config: dict) -> RunSpec:
    """Relay-scheme routing of pseudo-random variable-length flows."""
    from ..algorithms.columnar import routing_array, routing_generator
    from .columnar import DualProgram

    n = int(config.get("n", 8))
    scheme = str(config.get("scheme", "relay"))
    return RunSpec(
        program=DualProgram(routing_generator, routing_array, "routing"),
        node_input=list(range(n)),
        aux=scheme,
        n=n,
        bandwidth_multiplier=int(config.get("bandwidth_multiplier", 2)),
    )


def _byzantine_point(config: dict) -> tuple[int, int, int, int, int]:
    """Shared parameter resolution for the Byzantine broadcast entries."""
    n = int(config.get("n", 9))
    f = int(config.get("f", 1))
    broadcaster = int(config.get("broadcaster", 0))
    value_width = int(config.get("value_width", 8))
    value = int(config.get("value", 0xB5)) & ((1 << value_width) - 1)
    return n, f, broadcaster, value_width, value


@algorithm("bracha", columnar=True)
def _spec_bracha(config: dict) -> RunSpec:
    """Bracha reliable broadcast (natively Byzantine-resilient)."""
    from ..algorithms import bracha_broadcast
    from .columnar import DualProgram, adapt_generator

    n, f, broadcaster, value_width, value = _byzantine_point(config)

    def prog(node):
        return (
            yield from bracha_broadcast(
                node, broadcaster=broadcaster, f=f, value_width=value_width
            )
        )

    return RunSpec(
        program=DualProgram(prog, adapt_generator(prog), "bracha"),
        node_input=[value] * n,
        n=n,
        bandwidth=2 + value_width,
    )


@algorithm("dolev", columnar=True)
def _spec_dolev(config: dict) -> RunSpec:
    """Dolev path-verified relay (natively Byzantine-resilient)."""
    from ..algorithms import dolev_broadcast
    from .columnar import DualProgram, adapt_generator

    n, f, broadcaster, value_width, value = _byzantine_point(config)

    def prog(node):
        return (
            yield from dolev_broadcast(
                node, broadcaster=broadcaster, f=f, value_width=value_width
            )
        )

    return RunSpec(
        program=DualProgram(prog, adapt_generator(prog), "dolev"),
        node_input=[value] * n,
        n=n,
        bandwidth=value_width,
    )


def catalog_factory(config: dict) -> RunSpec:
    """Sweep factory dispatching on ``config["algorithm"]``.

    Module-level and picklable, so it can be handed straight to
    :func:`~repro.engine.pool.run_sweep` from any process.
    """
    name = config.get("algorithm")
    try:
        builder = CATALOG[name]
    except KeyError:
        known = sorted(CATALOG)
        hint = did_you_mean(str(name), known)
        raise CliqueError(
            f"unknown catalog algorithm {name!r}; known: {known}{hint}"
        ) from None
    return builder(config)


# ---------------------------------------------------------------------------
# Differential checking
# ---------------------------------------------------------------------------


@dataclass
class EngineDiff:
    """Comparison of one run across several backends."""

    label: str
    engines: tuple[str, ...]
    rounds: dict[str, int] = field(default_factory=dict)
    total_message_bits: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every backend agreed on outputs and round counts."""
        return not self.mismatches

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            rounds = next(iter(self.rounds.values()), 0)
            return f"{self.label}: {'/'.join(self.engines)} agree ({rounds} rounds)"
        return f"{self.label}: MISMATCH — " + "; ".join(self.mismatches)


def _engine_label(engine: "str | Engine | None") -> str:
    if engine is None:
        return "reference"
    if isinstance(engine, Engine):
        return engine.name
    return str(engine)


def diff_engines(
    factory: Callable[[dict], RunSpec],
    config: dict,
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    label: str | None = None,
    symbolic: bool = False,
) -> EngineDiff:
    """Run one grid point on every backend and compare the results.

    The spec is rebuilt from ``factory(config)`` for each backend so no
    state leaks between runs.  Outputs are compared node by node with
    the same numpy-tolerant equality ``RunResult.common_output`` uses;
    round counts and total message/bulk bits must match exactly.

    ``symbolic=True`` folds the algorithm's analytic twin into the
    comparison surface: the :class:`~repro.analysis.symbolic.CostModel`
    declared for ``config["algorithm"]`` is evaluated at the same point
    and its closed-form rounds and total bits must match the baseline
    engine exactly, reported as a pseudo-engine row ``"symbolic"``.  The
    model's ``domain`` pins (e.g. ``scheme="lenzen"`` for routing) are
    merged into the config *before* the engines run, so every backend
    and the closed form see the identical instance.
    """
    model = None
    if symbolic:
        from ..analysis.symbolic import get_cost_model

        algo = config.get("algorithm", label)
        model = get_cost_model(COST_DECLARATIONS.get(algo, algo))
        config = model.config(config)
    names = tuple(_engine_label(e) for e in engines)
    report = EngineDiff(
        label=label or config.get("algorithm", "program"),
        engines=names + (("symbolic",) if model is not None else ()),
    )
    results: dict[str, RunResult] = {}
    for engine, name in zip(engines, names):
        result, _ = run_spec(factory(dict(config)), engine)
        results[name] = result
        report.rounds[name] = result.rounds
        report.total_message_bits[name] = result.total_message_bits

    baseline_name = names[0]
    if model is not None:
        predicted = model.evaluate(config)
        report.rounds["symbolic"] = predicted.rounds
        report.total_message_bits["symbolic"] = predicted.message_bits
        base = results[baseline_name]
        if predicted.rounds != base.rounds:
            report.mismatches.append(
                f"symbolic rounds: {baseline_name}={base.rounds} "
                f"closed-form={predicted.rounds}"
            )
        if predicted.message_bits != base.total_message_bits:
            report.mismatches.append(
                f"symbolic message bits: {baseline_name}="
                f"{base.total_message_bits} closed-form={predicted.message_bits}"
            )
        if predicted.bulk_bits != base.bulk_bits:
            report.mismatches.append(
                f"symbolic bulk bits: {baseline_name}={base.bulk_bits} "
                f"closed-form={predicted.bulk_bits}"
            )
    baseline = results[baseline_name]
    for name in names[1:]:
        other = results[name]
        if other.rounds != baseline.rounds:
            report.mismatches.append(
                f"rounds: {baseline_name}={baseline.rounds} {name}={other.rounds}"
            )
        if sorted(other.outputs) != sorted(baseline.outputs):
            report.mismatches.append(
                f"output nodes differ: {baseline_name}={sorted(baseline.outputs)} "
                f"{name}={sorted(other.outputs)}"
            )
            continue
        for v in sorted(baseline.outputs):
            if not _outputs_equal(baseline.outputs[v], other.outputs[v]):
                report.mismatches.append(
                    f"node {v} output: {baseline_name}={baseline.outputs[v]!r} "
                    f"{name}={other.outputs[v]!r}"
                )
        if other.total_message_bits != baseline.total_message_bits:
            report.mismatches.append(
                f"message bits: {baseline_name}={baseline.total_message_bits} "
                f"{name}={other.total_message_bits}"
            )
        if other.bulk_bits != baseline.bulk_bits:
            report.mismatches.append(
                f"bulk bits: {baseline_name}={baseline.bulk_bits} "
                f"{name}={other.bulk_bits}"
            )
    return report


def assert_engines_agree(
    factory: Callable[[dict], RunSpec],
    config: dict,
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    label: str | None = None,
) -> EngineDiff:
    """:func:`diff_engines`, raising :class:`CliqueError` on any mismatch."""
    report = diff_engines(factory, config, engines=engines, label=label)
    if not report.ok:
        raise CliqueError(report.summary())
    return report


#: Catalog algorithms compatible with the :func:`repro.faults.resilient`
#: wrapper: pure message-passing, no cost-model bulk channel (the
#: wrapper's 3-bit frame header lives inside the per-link budget, so
#: bulk sends are rejected).  The :data:`NATIVE_RESILIENT` subset is
#: resilient *by protocol design* and runs unwrapped.
RESILIENT_CATALOG: tuple[str, ...] = ("bfs", "broadcast", "kvc", "bracha", "dolev")

#: Catalog entries that tolerate faults natively (Byzantine broadcast
#: protocols): :func:`diff_resilient` runs them unwrapped and compares
#: engine against engine — outputs, rounds, bits *and* full metrics
#: including per-behaviour fault counters — instead of against a
#: fault-free baseline (their outputs legitimately depend on the
#: injected adversary, so "same as fault-free" is not the contract;
#: "identical on every backend" is).
NATIVE_RESILIENT: frozenset[str] = frozenset({"bracha", "dolev"})


def diff_resilient(
    names: Sequence[str] | None = None,
    config: dict | None = None,
    *,
    fault_plan: "str | object" = "drop=0.2",
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    timeout: int = 2,
    max_attempts: int = 8,
    backoff_cap: int = 8,
) -> list[EngineDiff]:
    """Differentially verify the resilience layer under injected faults.

    For each named algorithm the fault-free reference run is the ground
    truth; the same program wrapped in :func:`repro.faults.resilient` is
    then executed under ``fault_plan`` on every backend, and the outputs
    must match node for node.  Round counts and bit totals legitimately
    grow (the ack/retransmit protocol pays for masking the faults), so
    the report records them per backend — next to the ``"fault-free"``
    baseline — without treating the growth as a mismatch.

    ``names`` defaults to :data:`RESILIENT_CATALOG`; algorithms using
    the bulk channel are incompatible with the wrapper and will raise.
    """
    from ..faults import resilient

    reports = []
    for name in names if names is not None else RESILIENT_CATALOG:
        point = dict(config or {})
        point["algorithm"] = name
        engine_names = tuple(_engine_label(e) for e in engines)
        if name in NATIVE_RESILIENT:
            reports.append(
                _diff_native_resilient(point, engines, engine_names, fault_plan)
            )
            continue
        report = EngineDiff(label=f"resilient:{name}", engines=engine_names)
        baseline, _ = run_spec(catalog_factory(dict(point)), "reference")
        report.rounds["fault-free"] = baseline.rounds
        report.total_message_bits["fault-free"] = baseline.total_message_bits
        for engine, engine_name in zip(engines, engine_names):
            spec = catalog_factory(dict(point))
            spec.program = resilient(
                spec.program,
                timeout=timeout,
                max_attempts=max_attempts,
                backoff_cap=backoff_cap,
            )
            result, _ = run_spec(spec, engine, fault_plan=fault_plan)
            report.rounds[engine_name] = result.rounds
            report.total_message_bits[engine_name] = result.total_message_bits
            if sorted(result.outputs) != sorted(baseline.outputs):
                report.mismatches.append(
                    f"output nodes differ: fault-free="
                    f"{sorted(baseline.outputs)} "
                    f"{engine_name}={sorted(result.outputs)}"
                )
                continue
            for v in sorted(baseline.outputs):
                if not _outputs_equal(baseline.outputs[v], result.outputs[v]):
                    report.mismatches.append(
                        f"node {v} output: fault-free="
                        f"{baseline.outputs[v]!r} "
                        f"{engine_name}={result.outputs[v]!r}"
                    )
        reports.append(report)
    return reports


def _diff_native_resilient(
    point: dict,
    engines: Sequence["str | Engine"],
    engine_names: tuple[str, ...],
    fault_plan: "str | object",
) -> EngineDiff:
    """Engine-vs-engine comparison for :data:`NATIVE_RESILIENT` entries.

    The first engine's faulty run is the baseline; every other backend
    must reproduce its outputs, rounds, bit totals and full metrics —
    fault counters included — under the same seeded plan.  Runs attach
    a metrics observer so per-behaviour adversary counters are part of
    the comparison surface.
    """
    from ..obs import MetricsCollector

    name = point["algorithm"]
    report = EngineDiff(label=f"byzantine:{name}", engines=engine_names)
    results: dict[str, RunResult] = {}
    for engine, engine_name in zip(engines, engine_names):
        spec = catalog_factory(dict(point))
        result, _ = run_spec(
            spec, engine, fault_plan=fault_plan, observer=MetricsCollector()
        )
        results[engine_name] = result
        report.rounds[engine_name] = result.rounds
        report.total_message_bits[engine_name] = result.total_message_bits
    baseline_name = engine_names[0]
    baseline = results[baseline_name]
    for engine_name in engine_names[1:]:
        other = results[engine_name]
        if sorted(other.outputs) != sorted(baseline.outputs):
            report.mismatches.append(
                f"output nodes differ: {baseline_name}="
                f"{sorted(baseline.outputs)} "
                f"{engine_name}={sorted(other.outputs)}"
            )
            continue
        for v in sorted(baseline.outputs):
            if not _outputs_equal(baseline.outputs[v], other.outputs[v]):
                report.mismatches.append(
                    f"node {v} output: {baseline_name}="
                    f"{baseline.outputs[v]!r} "
                    f"{engine_name}={other.outputs[v]!r}"
                )
        report.mismatches.extend(
            _metrics_mismatches(engine_name, baseline.metrics, other.metrics)
        )
    return report


def _metrics_mismatches(name: str, base, other) -> list[str]:
    """Compare two ``RunMetrics`` across backends.

    Broadcasts are counted in different slots by design (the reference
    engine expands them to unicasts), so per-slot message counts are
    compared as totals; bit volumes, per-node load profiles, counters
    and fault totals must match exactly.
    """
    issues: list[str] = []
    if base is None or other is None:
        if (base is None) != (other is None):
            issues.append(f"metrics presence: reference={base} {name}={other}")
        return issues
    for field_name in ("rounds", "message_bits", "bulk_bits"):
        a, b = getattr(base, field_name), getattr(other, field_name)
        if a != b:
            issues.append(f"metrics.{field_name}: reference={a} {name}={b}")
    total_a = base.unicast_messages + base.broadcast_messages
    total_b = other.unicast_messages + other.broadcast_messages
    if total_a != total_b or base.bulk_messages != other.bulk_messages:
        issues.append(
            f"metrics message totals: reference="
            f"{(total_a, base.bulk_messages)} {name}="
            f"{(total_b, other.bulk_messages)}"
        )
    if tuple(base.sent_bits) != tuple(other.sent_bits) or tuple(
        base.received_bits
    ) != tuple(other.received_bits):
        issues.append(f"metrics per-node load profile differs on {name}")
    if tuple(base.counters) != tuple(other.counters):
        issues.append(f"metrics counters differ on {name}")
    if dict(base.faults) != dict(other.faults):
        issues.append(
            f"metrics.faults: reference={base.faults} {name}={other.faults}"
        )
    for ra, rb in zip(base.per_round, other.per_round):
        if (
            ra.message_bits != rb.message_bits
            or ra.bulk_bits != rb.bulk_bits
            or ra.messages != rb.messages
            or ra.max_load_bits != rb.max_load_bits
            or ra.faults != rb.faults
        ):
            issues.append(
                f"metrics round {ra.round}: reference={ra.to_dict()} "
                f"{name}={rb.to_dict()}"
            )
            break
    return issues


#: Columnar-ported entries safe to diff *under an active fault plan*:
#: their outputs depend on individual deliveries but the protocol has no
#: multi-round reassembly that a dropped chunk would turn into an error
#: (chunked collectives raise on loss in both engines, but the raised
#: error is not a comparable output).
COLUMNAR_FAULT_CATALOG: tuple[str, ...] = ("fanout", "fanout_work")


def _columnar_gate_engine(check: str, shard: "int | None"):
    """The columnar engine one ``diff_columnar`` axis point runs.

    ``shard=None`` is the classic single-instance engine; a shard count
    builds a shard-parallel engine on inline shards with the pickled
    transport, so every gate point exercises the full shard codec
    without paying a process fork per (entry, check, shards) cell —
    process-executor parity has its own dedicated tests.
    """
    from .base import resolve_engine
    from .columnar import ColumnarEngine

    if shard is None:
        return resolve_engine("columnar", check=check)
    return ColumnarEngine(
        check=check, shards=shard, executor="inline", transport="pickle"
    )


def diff_columnar(
    names: Sequence[str] | None = None,
    config: dict | None = None,
    *,
    fault_plan: "str | object" = "drop=0.2,corrupt=0.1,duplicate=0.1,seed=3",
    shards: "Sequence[int | None]" = (None,),
) -> list[EngineDiff]:
    """The columnar correctness gate.

    For every columnar-ported catalog entry, runs the reference and
    columnar backends at **every** check level and compares outputs,
    rounds, bit totals and the collected :class:`~repro.obs.RunMetrics`
    (bit-for-bit per round).  Entries in :data:`COLUMNAR_FAULT_CATALOG`
    are additionally compared under ``fault_plan``, and the metrics
    comparison doubles as transcript-level accounting parity.

    ``shards`` adds a shard-parallel axis: every ``(entry, check)``
    cell — the faulty leg included — is repeated per listed shard count
    (``None`` = classic single-instance), and each must stay
    bit-identical to the reference engine.
    """
    from .base import CHECK_LEVELS, resolve_engine

    reports: list[EngineDiff] = []
    for name in names if names is not None else sorted(COLUMNAR_CATALOG):
        point = dict(config or {})
        point["algorithm"] = name
        for shard in shards:
            suffix = "" if shard is None else f"@shards={shard}"
            for check in CHECK_LEVELS:
                engines = (
                    resolve_engine("reference", check=check),
                    _columnar_gate_engine(check, shard),
                )
                report = diff_engines(
                    catalog_factory,
                    point,
                    engines=engines,
                    label=f"{name}@{check}{suffix}",
                )
                results = {
                    e.name: run_spec(catalog_factory(dict(point)), e)[0]
                    for e in engines
                }
                report.mismatches.extend(
                    _metrics_mismatches(
                        "columnar",
                        results["reference"].metrics,
                        results["columnar"].metrics,
                    )
                )
                reports.append(report)
            if name in COLUMNAR_FAULT_CATALOG:
                report = EngineDiff(
                    label=f"{name}@faulty{suffix}",
                    engines=("reference", "columnar"),
                )
                faulty = {}
                for label, engine in (
                    ("reference", "reference"),
                    ("columnar", _columnar_gate_engine("bandwidth", shard)),
                ):
                    result, _ = run_spec(
                        catalog_factory(dict(point)),
                        engine,
                        fault_plan=fault_plan,
                    )
                    faulty[label] = result
                    report.rounds[label] = result.rounds
                    report.total_message_bits[label] = (
                        result.total_message_bits
                    )
                base, other = faulty["reference"], faulty["columnar"]
                for v in sorted(base.outputs):
                    if not _outputs_equal(base.outputs[v], other.outputs[v]):
                        report.mismatches.append(
                            f"node {v} faulty output: reference="
                            f"{base.outputs[v]!r} columnar={other.outputs[v]!r}"
                        )
                if base.received_bits != other.received_bits:
                    report.mismatches.append("faulty received_bits differ")
                report.mismatches.extend(
                    _metrics_mismatches("columnar", base.metrics, other.metrics)
                )
                reports.append(report)
    return reports


def diff_catalog(
    names: Sequence[str] | None = None,
    config: dict | None = None,
    engines: Sequence["str | Engine"] = ("reference", "fast"),
    symbolic: bool = False,
) -> list[EngineDiff]:
    """Differentially check every named catalog algorithm.

    ``config`` supplies shared overrides (``n``, ``seed``, ...); each
    algorithm keeps its own defaults otherwise.  ``symbolic=True`` adds
    each entry's closed-form cost model as an extra comparison row (see
    :func:`diff_engines`).
    """
    reports = []
    for name in names if names is not None else sorted(CATALOG):
        point = dict(config or {})
        point["algorithm"] = name
        reports.append(
            diff_engines(
                catalog_factory,
                point,
                engines=engines,
                label=name,
                symbolic=symbolic,
            )
        )
    return reports
