"""repro — an executable reproduction of

    Korhonen & Suomela, "Towards a Complexity Theory for the Congested
    Clique", SPAA 2018 (arXiv:1705.03284).

The package layers:

* :mod:`repro.clique` — the congested clique simulator (round model,
  bit-exact messages, routing, sorting, collectives),
* :mod:`repro.engine` — pluggable execution backends (validating
  reference engine, batched fast engine), the multiprocess sweep
  runner, the on-disk run cache and the engine differential checker,
* :mod:`repro.faults` — deterministic, seed-replayable fault injection
  (drops, corruption, duplication, link failures, crashes) and the
  ``resilient`` ack/retransmit wrapper that masks omission faults at an
  honest round/bit cost,
* :mod:`repro.algorithms` — every distributed upper bound the paper
  states or uses (Theorems 9 and 11, Dolev et al. subgraph detection,
  matrix multiplication, APSP/SSSP/BFS, MST, k-path),
* :mod:`repro.core` — the complexity theory itself (Lemma 1 counting,
  the Theorem 2/4/8 hierarchies, Theorem 3 normal form, the Theorem 7
  collapse, Theorem 6 edge labellings, the Figure 1 exponent registry),
* :mod:`repro.reductions` — the executable arrows of Figure 1 including
  the Theorem 10 gadget (Figure 2),
* :mod:`repro.problems` — decision problems, generators and reference
  solvers,
* :mod:`repro.analysis` — exponent fitting and report tables.

Quickstart::

    from repro.clique import CliqueGraph, run_algorithm
    from repro.algorithms import triangle_detection

    g = CliqueGraph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4)])

    def program(node):
        return (yield from triangle_detection(node))

    result = run_algorithm(program, g, bandwidth_multiplier=2)
    found, witness = result.common_output()
"""

from . import (
    algorithms,
    analysis,
    clique,
    core,
    engine,
    faults,
    problems,
    reductions,
)

__version__ = "0.1.0"

__all__ = [
    "algorithms",
    "analysis",
    "clique",
    "core",
    "engine",
    "faults",
    "problems",
    "reductions",
    "__version__",
]
