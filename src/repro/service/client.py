"""Client for the ``repro serve`` daemon.

One :class:`ServiceClient` method call is one connection: connect to the
daemon's socket, send a single framed request, read the single framed
reply (see :mod:`repro.service.protocol`).  ``repro run --remote`` is a
thin CLI wrapper around this class.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from .protocol import (
    ServiceBusy,
    ServiceError,
    default_socket_path,
    raise_for_reply,
    recv_message,
    send_message,
)

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable"]


class ServiceUnavailable(ServiceError):
    """No daemon is listening on the socket (start one with ``repro serve``)."""


class ServiceClient:
    """Talks to a :class:`~repro.service.server.ReproServer`.

    Parameters
    ----------
    socket_path:
        The daemon's socket; defaults to
        :func:`~repro.service.protocol.default_socket_path`.
    timeout:
        Per-request socket timeout in seconds (connect and reply); a
        sweep that computes longer than this raises ``TimeoutError``
        client-side while the server finishes regardless.
    """

    def __init__(self, socket_path: "str | None" = None, timeout: float = 60.0) -> None:
        self.socket_path = socket_path or default_socket_path()
        self.timeout = timeout

    def request(self, payload: dict) -> dict:
        """Send one raw request dict and return the successful reply.

        Raises :class:`ServiceUnavailable` when nothing listens on the
        socket, :class:`~repro.service.protocol.ServiceBusy` on a
        backpressure rejection, and
        :class:`~repro.service.protocol.ServiceError` for any other
        failed reply.
        """
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(self.socket_path)
            except (FileNotFoundError, ConnectionRefusedError) as exc:
                raise ServiceUnavailable(
                    f"no repro daemon on {self.socket_path} "
                    f"({type(exc).__name__}); start one with 'repro serve'"
                ) from None
            send_message(sock, payload)
            try:
                reply = recv_message(sock)
            except EOFError:
                raise ServiceError(
                    "daemon closed the connection without a reply"
                ) from None
        finally:
            sock.close()
        return raise_for_reply(reply)

    # -- operations ------------------------------------------------------

    def ping(self) -> dict:
        """Liveness check; returns the daemon's pid and version."""
        return self.request({"op": "ping"})

    def status(self) -> dict:
        """The daemon's status dict (cache/pool/queue/counters)."""
        return self.request({"op": "status"})["status"]

    def shutdown(self) -> dict:
        """Ask the daemon to drain queued work and exit."""
        return self.request({"op": "shutdown"})

    @staticmethod
    def _execution_payload(execution: Any) -> "dict | None":
        """Serialise an ``execution=`` argument for the JSON protocol.

        Accepts an :class:`~repro.engine.spec.ExecutionSpec`, a dict in
        its ``to_dict`` form, an engine name, or ``None``.  Engine and
        observer *instances* are rejected by ``to_dict`` — the protocol
        carries specs only.
        """
        if execution is None:
            return None
        if isinstance(execution, dict):
            execution = dict(execution)
        from ..engine.spec import ExecutionSpec

        return ExecutionSpec.coerce(execution).to_dict()

    def run(
        self,
        algorithm: str,
        config: "dict | None" = None,
        *,
        execution: Any = None,
        engine: "str | None" = None,
        observer: Any = None,
        fault_plan: "str | None" = None,
        cache: bool = True,
    ) -> dict:
        """Execute one catalog algorithm on the daemon.

        ``config`` carries the grid-point parameters (``n``, ``seed``,
        ``p``, ``k``, ...); ``execution`` is an
        :class:`~repro.engine.spec.ExecutionSpec` (or its dict form, or
        an engine name) bundling engine/check/observer/fault-plan; the
        flat ``engine``/``observer``/``fault_plan`` keywords may fill
        unset spec fields (a field set both ways must agree
        server-side).  All are specs (JSON-able), never instances.  The
        daemon defaults to the ``fast`` engine when no field names one.
        Returns the reply dict with ``rounds``/bit
        totals/``common_output`` and ``cached``.
        """
        payload = {
            "op": "run",
            "algorithm": algorithm,
            "config": config or {},
            "engine": engine,
            "observer": observer,
            "fault_plan": fault_plan,
            "cache": cache,
        }
        spec = self._execution_payload(execution)
        if spec is not None:
            payload["execution"] = spec
        return self.request(payload)

    def sweep(
        self,
        algorithm: str,
        configs: "list[dict]",
        *,
        execution: Any = None,
        engine: "str | None" = None,
        workers: "int | None" = None,
        observer: Any = None,
        fault_plan: "str | None" = None,
        base_seed: int = 0,
        cache: bool = True,
    ) -> dict:
        """Run a grid of configs for one catalog algorithm on the daemon.

        ``execution`` follows the same rules as :meth:`run`.
        """
        payload = {
            "op": "sweep",
            "algorithm": algorithm,
            "configs": configs,
            "engine": engine,
            "workers": workers,
            "observer": observer,
            "fault_plan": fault_plan,
            "base_seed": base_seed,
            "cache": cache,
        }
        spec = self._execution_payload(execution)
        if spec is not None:
            payload["execution"] = spec
        return self.request(payload)

    def sleep(self, seconds: float) -> dict:
        """Diagnostic: occupy one worker thread for ``seconds`` (capped
        server-side).  Exists so backpressure is deterministically
        testable."""
        return self.request({"op": "sleep", "seconds": seconds})

    def wait_until_ready(self, timeout: float = 10.0) -> dict:
        """Poll ``ping`` until the daemon answers or ``timeout`` expires."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except (ServiceUnavailable, ServiceBusy, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
