"""Service layer: the sharded run kernel and the long-running daemon.

Two pieces sit here, both built on the engine substrate below:

* :mod:`repro.service.kernel` — the ``engine="sharded"`` backend: node
  programs become coroutine tasks on a round-synchronous discrete-event
  kernel, partitioned into shards that advance independently between
  round barriers and exchange messages as pickle-protocol-5 frames.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  ``repro serve`` daemon: a local-socket service that keeps the warm
  worker pool and a resident :class:`~repro.engine.cache.RunCache`
  alive across requests, so clients (``repro run --remote``) skip both
  interpreter cold-start and recomputation.

This package imports :mod:`repro.engine`, :mod:`repro.obs` and
:mod:`repro.faults`; nothing below it imports back (the engine registry
resolves ``"sharded"`` lazily by module path).
"""

from .client import ServiceClient, ServiceUnavailable
from .kernel import Kernel, ShardedEngine, ShardTransport, fanout_spec
from .protocol import (
    ServiceBusy,
    ServiceError,
    default_socket_path,
    recv_message,
    send_message,
)
from .server import ReproServer, serve

__all__ = [
    "Kernel",
    "ReproServer",
    "ServiceBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "ShardTransport",
    "ShardedEngine",
    "default_socket_path",
    "fanout_spec",
    "recv_message",
    "send_message",
    "serve",
]
