"""Sharded discrete-event coroutine kernel: the ``"sharded"`` backend.

The reference and fast engines drive all ``n`` node generators from one
flat loop.  This module restructures execution for scale-out: nodes
become cheap coroutine *tasks* scheduled by a round-synchronous
:class:`Kernel` (in the spirit of usim's discrete-event kernel — tasks
``yield`` to sleep until the next round barrier), and the node range is
partitioned into :class:`InlineShard`/:class:`ProcessShard` units that
advance independently between barriers:

* each round, every shard advances its live tasks to their next
  ``yield`` and drains their queued messages into one update;
* the coordinator (:class:`ShardedEngine`) validates, applies fault
  injection, performs delivery and bit accounting exactly like the fast
  engine's explicit path, then hands each shard its nodes' inboxes;
* shard boundary crossings use :class:`ShardTransport` — pickle
  protocol 5 with out-of-band buffers — so payload bytes move without
  an extra copy; ``ProcessShard`` speaks the same codec over a pipe to
  a forked worker that holds its node generators for the whole run
  (``fork`` means the program, inputs and closures are inherited by
  memory, never pickled).

The backend registers as ``engine="sharded"`` (resolved lazily by
:func:`repro.engine.base.resolve_engine` to keep the layering acyclic)
and must stay observationally equivalent to the reference engine —
``tests/service/test_kernel.py`` runs the full
:mod:`repro.engine.diff` catalog against it.
"""

from __future__ import annotations

import pickle
import struct
import warnings
from collections import deque
from typing import Any, Callable, NamedTuple, Sequence

import numpy as np

from ..clique.bits import BitString
from ..clique.errors import CliqueError, RoundLimitExceeded
from ..clique.network import NodeProgram, RunResult
from ..clique.transcript import RoundRecord, Transcript
from ..engine.base import (
    CHECK_LEVELS,
    Engine,
    canonical_check,
    register_engine,
)
from ..engine.fast import _BROADCAST, _FastNode
from ..engine.pool import RunSpec
from ..faults import FaultInjector, resolve_fault_plan
from ..obs import RoundStats, resolve_observer
from ..obs.profile import PhaseTimer

__all__ = [
    "ColumnarEmit",
    "ColumnarShardPool",
    "InlineColumnarShard",
    "InlineShard",
    "Kernel",
    "ProcessColumnarShard",
    "ProcessShard",
    "ShardTransport",
    "ShardedEngine",
    "fanout_spec",
    "shard_ranges",
    "spawn_columnar_shards",
]

#: Default shard count when the engine is built without an explicit one.
DEFAULT_SHARDS = 4

#: One shard's per-round report: ``(halted, entries)`` where ``halted``
#: is ``[(node, output)]`` for tasks that returned this step and
#: ``entries`` is ``[(src, dst, payload, is_bulk)]`` in queue order
#: (``dst == -1`` marks an unexpanded broadcast).
ShardUpdate = tuple


class Kernel:
    """Round-synchronous discrete-event scheduler for node coroutines.

    Tasks are generators; ``yield`` suspends a task until the next round
    barrier, ``return value`` finishes it.  The kernel keeps the wait
    queue in spawn order, so with tasks spawned by ascending node id the
    advance order matches the lockstep engines (``sorted(live)``).
    """

    __slots__ = ("now", "_waiting")

    def __init__(self) -> None:
        #: The current round clock (advanced by :meth:`step`).
        self.now = 0
        self._waiting: deque[tuple[int, Any]] = deque()

    def spawn(self, key: int, coroutine: Any) -> None:
        """Add a task; it first runs at the next :meth:`step`."""
        if not hasattr(coroutine, "send"):
            raise CliqueError(
                "node program must be a generator function "
                "(use 'yield' for round boundaries)"
            )
        self._waiting.append((key, coroutine))

    def __len__(self) -> int:
        """Number of tasks still waiting on the next barrier."""
        return len(self._waiting)

    def step(self, round_no: int) -> list[tuple[int, Any]]:
        """Advance the clock to ``round_no`` and run every waiting task
        once (to its next ``yield``); returns ``(key, return value)``
        for the tasks that finished during this step."""
        self.now = round_no
        ready = self._waiting
        self._waiting = deque()
        finished: list[tuple[int, Any]] = []
        while ready:
            key, coroutine = ready.popleft()
            try:
                next(coroutine)
            except StopIteration as stop:
                finished.append((key, stop.value))
            else:
                self._waiting.append((key, coroutine))
        return finished


class ShardTransport:
    """Pickle-protocol-5 codec for data crossing a shard boundary.

    ``encode`` splits an object into a pickle body plus out-of-band
    buffers (zero-copy for buffer-backed payloads such as numpy arrays);
    ``decode`` reassembles it.  Both the in-process loopback transport
    (``transport="pickle"``) and the :class:`ProcessShard` pipe protocol
    go through this codec, so the bytes that would cross a real machine
    boundary are exercised even in single-process runs.
    """

    @staticmethod
    def encode(obj: Any) -> tuple[bytes, list[bytes]]:
        """``obj`` as ``(body, buffers)``."""
        buffers: list[pickle.PickleBuffer] = []
        body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        return body, [buf.raw().tobytes() for buf in buffers]

    @staticmethod
    def decode(body: bytes, buffers: Sequence[bytes]) -> Any:
        """Inverse of :meth:`encode`."""
        return pickle.loads(body, buffers=buffers)

    @classmethod
    def roundtrip(cls, obj: Any) -> Any:
        """Encode then decode (the in-process loopback transport)."""
        body, buffers = cls.encode(obj)
        return cls.decode(body, buffers)


def shard_ranges(n: int, shards: int) -> list[tuple[int, int]]:
    """Partition ``0..n-1`` into ``shards`` contiguous ``(lo, hi)`` ranges."""
    if shards < 1:
        raise CliqueError(f"need at least one shard, got {shards}")
    shards = min(shards, n)
    return [(i * n // shards, (i + 1) * n // shards) for i in range(shards)]


def _build_nodes(
    program: NodeProgram,
    lo: int,
    hi: int,
    n: int,
    bandwidth: int,
    inputs: Sequence[Any],
    auxes: Sequence[Any],
    check: str,
) -> tuple[dict[int, _FastNode], Kernel]:
    """One shard's nodes and kernel, tasks spawned in node order."""
    nodes: dict[int, _FastNode] = {}
    kernel = Kernel()
    for v in range(lo, hi):
        node = _FastNode(v, n, bandwidth, inputs[v], auxes[v], check)
        nodes[v] = node
        kernel.spawn(v, program(node))
    return nodes, kernel


def _drain_entries(
    nodes: dict[int, _FastNode], full_check: bool
) -> list[tuple[int, int, BitString, bool]]:
    """Collect every queued message of a shard in delivery order.

    Mirrors the fast engine's explicit path: per node (ascending id),
    first the flat outbox in queue order, then the bulk channel.
    """
    entries: list[tuple[int, int, BitString, bool]] = []
    for v, node in nodes.items():
        if node._flat_out:
            for dst, payload in node._flat_out:
                entries.append((v, dst, payload, False))
            node._flat_out = []
        if node._flat_bulk:
            for dst, payload in node._flat_bulk:
                entries.append((v, dst, payload, True))
            node._flat_bulk = []
        if full_check and node._sent_to:
            node._sent_to.clear()
    return entries


class InlineShard:
    """A shard advanced in the coordinator's own process.

    With ``transport="pickle"`` every update is round-tripped through
    :class:`ShardTransport` before the coordinator reads it, so the
    serialised form is validated without a process boundary.
    """

    def __init__(
        self,
        index: int,
        lo: int,
        hi: int,
        program: NodeProgram,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        check: str,
        transport: str = "direct",
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self._full_check = check == "full"
        self._pickle = transport == "pickle"
        self._nodes, self._kernel = _build_nodes(
            program, lo, hi, n, bandwidth, inputs, auxes, check
        )

    def step(self, round_no: int, inbound: "list[dict] | None") -> ShardUpdate:
        """Deliver ``inbound`` (one inbox dict per node in ``lo..hi-1``,
        or ``None`` before the first round), advance every live task,
        and return the shard's update."""
        if inbound is not None:
            for offset, v in enumerate(range(self.lo, self.hi)):
                node = self._nodes[v]
                node._inbox = inbound[offset]
                node._round = round_no
        halted = self._kernel.step(round_no)
        entries = _drain_entries(self._nodes, self._full_check)
        for v, _ in halted:
            self._nodes[v]._halted = True
        update = (halted, entries)
        if self._pickle:
            update = ShardTransport.roundtrip(update)
        return update

    def finish(self) -> dict[int, dict]:
        """Per-node measurement counters, keyed by absolute node id."""
        return {v: dict(node.counters) for v, node in self._nodes.items()}

    def close(self, kill: bool = False) -> None:
        """Inline shards hold no external resources."""


# -- process shards ----------------------------------------------------------


def _send_frames(conn: Any, obj: Any) -> None:
    """Ship ``obj`` over a pipe as pickle-5 frames (body + raw buffers)."""
    body, buffers = ShardTransport.encode(obj)
    conn.send_bytes(struct.pack("<I", len(buffers)))
    conn.send_bytes(body)
    for buf in buffers:
        conn.send_bytes(buf)


def _recv_frames(conn: Any) -> Any:
    """Inverse of :func:`_send_frames`."""
    (count,) = struct.unpack("<I", conn.recv_bytes())
    body = conn.recv_bytes()
    buffers = [conn.recv_bytes() for _ in range(count)]
    return ShardTransport.decode(body, buffers)


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else an equivalent CliqueError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return CliqueError(f"{type(exc).__name__}: {exc}")


def _shard_worker_main(
    conn: Any,
    index: int,
    lo: int,
    hi: int,
    program: NodeProgram,
    n: int,
    bandwidth: int,
    inputs: Sequence[Any],
    auxes: Sequence[Any],
    check: str,
) -> None:  # pragma: no cover - runs in a forked child
    """Child entry point: hold the shard's generators, answer step/finish."""
    try:
        shard = InlineShard(index, lo, hi, program, n, bandwidth, inputs, auxes, check)
    except Exception as exc:
        _send_frames(conn, ("error", _picklable_error(exc)))
        return
    while True:
        message = _recv_frames(conn)
        op = message[0]
        if op == "step":
            _, round_no, inbound = message
            try:
                update = shard.step(round_no, inbound)
                _send_frames(conn, ("ok", update))
            except Exception as exc:
                _send_frames(conn, ("error", _picklable_error(exc)))
                return
        elif op == "finish":
            _send_frames(conn, ("counters", shard.finish()))
            return
        else:
            _send_frames(conn, ("error", CliqueError(f"unknown shard op {op!r}")))
            return


class ProcessShard:
    """A shard advanced in a forked worker process.

    The child is forked *before* any generator runs, so the program,
    its closures and the node inputs are inherited by memory — nothing
    about the program has to be picklable.  Only round traffic crosses
    the pipe, as :class:`ShardTransport` frames: the parent sends
    ``("step", round, inboxes)``, the child replies with the shard
    update; ``("finish",)`` returns the counters and ends the child.
    """

    def __init__(
        self,
        context: Any,
        index: int,
        lo: int,
        hi: int,
        program: NodeProgram,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        check: str,
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self._conn, child_conn = context.Pipe()
        self._proc = context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                index,
                lo,
                hi,
                program,
                n,
                bandwidth,
                inputs,
                auxes,
                check,
            ),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def _request(self, message: tuple) -> Any:
        _send_frames(self._conn, message)
        try:
            kind, payload = _recv_frames(self._conn)
        except (EOFError, OSError) as exc:
            raise CliqueError(
                f"shard {self.index} worker died mid-run "
                f"(exit code {self._proc.exitcode}): {exc}"
            ) from None
        if kind == "error":
            raise payload
        return payload

    def step(self, round_no: int, inbound: "list[dict] | None") -> ShardUpdate:
        """Remote :meth:`InlineShard.step` over the pipe."""
        return self._request(("step", round_no, inbound))

    def finish(self) -> dict[int, dict]:
        """Remote :meth:`InlineShard.finish`; the child exits after."""
        counters = self._request(("finish",))
        self._proc.join(timeout=5.0)
        return counters

    def close(self, kill: bool = False) -> None:
        """Tear the worker down (used on error paths)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._proc.is_alive():
            if kill:
                self._proc.terminate()
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - terminate ignored
                self._proc.kill()
                self._proc.join(timeout=5.0)


def _fork_context() -> Any:
    """The ``fork`` multiprocessing context, or ``None`` if unsupported
    (non-POSIX platforms, or inside a daemonic pool worker that may not
    have children of its own)."""
    import multiprocessing

    if multiprocessing.current_process().daemon:
        return None
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


# -- columnar shards ---------------------------------------------------------
#
# The sharded kernel hosting columnar shards: each shard holds a full
# ArrayContext restricted to an owned node range and runs its own
# instance of a *shardable* array program (see
# repro.engine.columnar.array_program).  The coordinator loop lives in
# ColumnarEngine._execute_sharded; this section provides the shard
# units, the forked worker protocol and the shared-memory broadcast
# image — per-round pipe traffic is only the cross-shard message
# slices, never the program state (inherited by fork) and, past a small
# threshold, not the broadcast columns either (written once into a
# SharedMemory segment every worker maps).

_COL_I = np.int64
_COL_U = np.uint64

#: Broadcast columns smaller than this many entries ship as plain
#: pickle-5 frames; larger ones go through the shared-memory image
#: (written once instead of pickled per shard).  Tests lower it to
#: force the shared-memory path at toy sizes.
_SHM_MIN_BCAST = 64


class ColumnarEmit(NamedTuple):
    """One columnar shard's per-step report.

    ``columns`` is the shard's owned emission outbox in
    :meth:`~repro.engine.columnar.ArrayContext._collect_outbox` order
    ``(bs, bv, bw, us, ud, uv, uw)``; ``bulk`` the owned bulk-channel
    tuples.  ``value`` and ``counters`` are populated once ``finished``
    is set (the program instance returned).
    """

    finished: bool
    columns: tuple
    bulk: list
    value: Any
    counters: "dict | None"


class _ColumnarShardCore:
    """One shard's program instance, advanced step by step.

    Shared by the inline and forked executors: holds the shard's
    :class:`~repro.engine.columnar.ArrayContext` (full-``n`` metadata,
    owned range ``[lo, hi)``) and its array-program generator, and
    enforces the owned-sender contract on every emission.
    """

    def __init__(
        self,
        array: Callable,
        index: int,
        lo: int,
        hi: int,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        check: str,
    ) -> None:
        from ..engine.columnar import ArrayContext

        self.index = index
        self.lo = lo
        self.hi = hi
        self._ctx = ArrayContext(
            n, bandwidth, inputs, auxes, check=check, lo=lo, hi=hi
        )
        self._gen = array(self._ctx)
        if not hasattr(self._gen, "send"):
            raise CliqueError(
                "array program must be a generator function "
                "(use 'yield' for round boundaries)"
            )
        self._finished = False
        self._value: Any = None

    def _advance(self) -> None:
        try:
            next(self._gen)
        except StopIteration as stop:
            self._finished = True
            self._value = stop.value

    def _emit(self) -> ColumnarEmit:
        ctx = self._ctx
        columns = ctx._collect_outbox()
        bulk = list(ctx._bulk)
        ctx._clear_outbox()
        self._check_owned(columns, bulk)
        if self._finished:
            counters = {
                key: np.asarray(col) for key, col in ctx._counters.items()
            }
            return ColumnarEmit(True, columns, bulk, self._value, counters)
        return ColumnarEmit(False, columns, bulk, None, None)

    def _check_owned(self, columns: tuple, bulk: list) -> None:
        """The shardable contract: every emission src is an owned node."""
        lo, hi = self.lo, self.hi
        bs, us = columns[0], columns[3]
        for kind, srcs in (("broadcast", bs), ("unicast", us)):
            if srcs.size and bool(((srcs < lo) | (srcs >= hi)).any()):
                bad = int(srcs[(srcs < lo) | (srcs >= hi)][0])
                raise CliqueError(
                    f"columnar shard {self.index} (nodes {lo}..{hi - 1}) "
                    f"queued a {kind} for non-owned sender {bad}; shardable "
                    f"array programs must emit only for their owned range"
                )
        for src, _dst, _value, _width in bulk:
            if not lo <= src < hi:
                raise CliqueError(
                    f"columnar shard {self.index} (nodes {lo}..{hi - 1}) "
                    f"queued a bulk send for non-owned sender {src}; "
                    f"shardable array programs must emit only for their "
                    f"owned range"
                )

    def first(self) -> ColumnarEmit:
        """Initial advance (the local-computation phase before round 1)."""
        self._advance()
        return self._emit()

    def step(
        self, round_no: int, bcast: tuple, coo: tuple, bulk: list
    ) -> ColumnarEmit:
        """Deliver one round's owned inbox slice and advance."""
        ctx = self._ctx
        ctx._in_bcast = bcast
        ctx._in_coo = coo
        ctx._in_bulk = list(bulk)
        ctx.round = round_no
        if not self._finished:
            self._advance()
        return self._emit()


def _resolve_bcast(desc: tuple, segments: dict) -> tuple:
    """Broadcast columns from a ``("raw", ...)`` / ``("shm", ...)`` descriptor.

    Shared-memory reads copy out of the segment immediately — the
    coordinator rewrites the image every round.
    """
    if desc[0] == "raw":
        return desc[1], desc[2], desc[3]
    _kind, name, m = desc
    seg = segments.get(name)
    if seg is None:
        seg = segments[name] = _attach_shm(name)
    buf = seg.buf
    bs = np.frombuffer(buf, dtype=_COL_I, count=m, offset=0).copy()
    bv = np.frombuffer(buf, dtype=_COL_U, count=m, offset=8 * m).copy()
    bw = np.frombuffer(buf, dtype=_COL_I, count=m, offset=16 * m).copy()
    return bs, bv, bw


def _attach_shm(name: str):
    """Attach an existing shared-memory segment without tracking it.

    The coordinator owns segment lifetime (it unlinks at pool close);
    attaching from a worker must not re-register the segment with the
    resource tracker or the worker's exit would double-unlink it.
    ``track=`` exists from Python 3.13; older versions need the
    register/unregister workaround.
    """
    from multiprocessing import resource_tracker, shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on python version
        seg = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
        return seg


def _create_shm(size: int):
    """A fresh shared-memory segment, or ``None`` where unsupported."""
    try:
        from multiprocessing import shared_memory

        return shared_memory.SharedMemory(create=True, size=size)
    except Exception:  # pragma: no cover - platform without shm support
        return None


class InlineColumnarShard:
    """A columnar shard advanced in the coordinator's own process.

    With ``transport="pickle"`` both the posted round traffic and the
    emitted update round-trip through :class:`ShardTransport`, so the
    frames a process boundary would carry are exercised in-process —
    the configuration the ``diff_columnar`` shards axis gates on.
    """

    def __init__(
        self,
        array: Callable,
        index: int,
        lo: int,
        hi: int,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        check: str,
        transport: str = "direct",
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self._pickle = transport == "pickle"
        self._core = _ColumnarShardCore(
            array, index, lo, hi, n, bandwidth, inputs, auxes, check
        )
        self._reply: ColumnarEmit | None = None

    def first(self) -> ColumnarEmit:
        """The shard's initial advance (before round 1)."""
        reply = self._core.first()
        return ShardTransport.roundtrip(reply) if self._pickle else reply

    def post(self, round_no: int, desc: tuple, coo: tuple, bulk: list) -> None:
        """Deliver one round's owned slice and advance immediately."""
        if self._pickle:
            round_no, desc, coo, bulk = ShardTransport.roundtrip(
                (round_no, desc, coo, bulk)
            )
        reply = self._core.step(round_no, (desc[1], desc[2], desc[3]), coo, bulk)
        self._reply = ShardTransport.roundtrip(reply) if self._pickle else reply

    def wait(self) -> ColumnarEmit:
        """The reply stashed by the immediately preceding :meth:`post`."""
        reply, self._reply = self._reply, None
        return reply

    def close(self, kill: bool = False) -> None:
        """Inline shards hold no external resources."""


def _columnar_worker_main(
    conn: Any,
    array: Callable,
    index: int,
    lo: int,
    hi: int,
    n: int,
    bandwidth: int,
    inputs: Sequence[Any],
    auxes: Sequence[Any],
    check: str,
    shm: Any,
) -> None:  # pragma: no cover - runs in a forked child
    """Child entry point: hold the shard's program instance, answer rounds."""
    segments: dict = {}
    if shm is not None:
        segments[shm.name] = shm
    try:
        try:
            core = _ColumnarShardCore(
                array, index, lo, hi, n, bandwidth, inputs, auxes, check
            )
            _send_frames(conn, ("ok", core.first()))
        except Exception as exc:
            _send_frames(conn, ("error", _picklable_error(exc)))
            return
        while True:
            try:
                message = _recv_frames(conn)
            except (EOFError, OSError):
                return
            op = message[0]
            if op == "round":
                _, round_no, desc, coo, bulk = message
                try:
                    bcast = _resolve_bcast(desc, segments)
                    _send_frames(
                        conn, ("ok", core.step(round_no, bcast, coo, bulk))
                    )
                except Exception as exc:
                    _send_frames(conn, ("error", _picklable_error(exc)))
                    return
            elif op == "close":
                return
            else:
                _send_frames(
                    conn,
                    ("error", CliqueError(f"unknown columnar shard op {op!r}")),
                )
                return
    finally:
        for seg in segments.values():
            try:
                seg.close()
            except Exception:
                pass


class ProcessColumnarShard:
    """A columnar shard advanced in a forked worker process.

    Forked *before* the program generator runs, so the array program,
    its closures and the resolved inputs are inherited by memory.  Per
    round the parent posts ``("round", round_no, bcast_desc, coo,
    bulk)`` — the owned destination slice as pickle-5 frames, the
    broadcast columns as either frames or a shared-memory descriptor —
    and the child replies with the shard's :class:`ColumnarEmit`.
    ``post``/``wait`` are split so the coordinator fans a round out to
    every worker before collecting any reply (that concurrency window
    is the multicore speedup).
    """

    def __init__(
        self,
        context: Any,
        array: Callable,
        index: int,
        lo: int,
        hi: int,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        check: str,
        shm: Any,
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self._conn, child_conn = context.Pipe()
        self._proc = context.Process(
            target=_columnar_worker_main,
            args=(
                child_conn,
                array,
                index,
                lo,
                hi,
                n,
                bandwidth,
                inputs,
                auxes,
                check,
                shm,
            ),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def _receive(self) -> ColumnarEmit:
        try:
            kind, payload = _recv_frames(self._conn)
        except (EOFError, OSError) as exc:
            raise CliqueError(
                f"columnar shard {self.index} worker died mid-run "
                f"(exit code {self._proc.exitcode}): {exc}"
            ) from None
        if kind == "error":
            raise payload
        return payload

    def first(self) -> ColumnarEmit:
        """The child's initial advance (sent eagerly on startup)."""
        return self._receive()

    def post(self, round_no: int, desc: tuple, coo: tuple, bulk: list) -> None:
        """Ship one round's owned slice to the child (non-blocking)."""
        _send_frames(self._conn, ("round", round_no, desc, coo, bulk))

    def wait(self) -> ColumnarEmit:
        """Block for the child's reply to the posted round."""
        return self._receive()

    def close(self, kill: bool = False) -> None:
        """Tear the worker down (normal completion and error paths)."""
        if not kill and self._proc.is_alive():
            try:
                _send_frames(self._conn, ("close",))
            except OSError:  # pragma: no cover - pipe already gone
                pass
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._proc.is_alive():
            if kill:
                self._proc.terminate()
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - terminate ignored
                self._proc.kill()
                self._proc.join(timeout=5.0)


class ColumnarShardPool:
    """The coordinator's handle on a set of columnar shards.

    Owns the shared-memory broadcast image: per round the broadcast
    columns are written once and every process worker reads its copy
    from the mapping, so only the per-shard unicast/bulk slices travel
    the pipes.  The image grows by reallocation when a round's
    broadcast traffic outgrows it (workers re-attach by name).
    """

    def __init__(
        self,
        shards: list,
        ranges: "list[tuple[int, int]]",
        shm: Any,
        segments: list,
    ) -> None:
        self.shards = shards
        self.ranges = ranges
        self._shm = shm
        self._segments = segments

    def first(self) -> "list[ColumnarEmit]":
        """Every shard's initial advance, in shard order."""
        return [shard.first() for shard in self.shards]

    def step(
        self,
        round_no: int,
        bcast: tuple,
        live: "list[int]",
        slices: "list[tuple]",
    ) -> "list[ColumnarEmit]":
        """Fan one round out to the live shards; replies in ``live`` order.

        ``slices[i]`` is ``(coo, bulk)`` — the owned destination slice
        of shard ``live[i]``.  All posts complete before any reply is
        awaited, so process workers compute the round concurrently.
        """
        desc = self._bcast_descriptor(*bcast)
        for index, (coo, bulk) in zip(live, slices):
            self.shards[index].post(round_no, desc, coo, bulk)
        return [self.shards[index].wait() for index in live]

    def _bcast_descriptor(self, bs, bv, bw) -> tuple:
        m = int(bs.size)
        if self._shm is None or m < _SHM_MIN_BCAST:
            return ("raw", bs, bv, bw)
        need = 24 * m
        if need > self._shm.size:
            seg = _create_shm(max(2 * need, 2 * self._shm.size))
            if seg is None:  # pragma: no cover - platform without shm
                self._shm = None
                return ("raw", bs, bv, bw)
            self._segments.append(seg)
            self._shm = seg
        buf = self._shm.buf
        np.frombuffer(buf, dtype=_COL_I, count=m, offset=0)[:] = bs
        np.frombuffer(buf, dtype=_COL_U, count=m, offset=8 * m)[:] = bv
        np.frombuffer(buf, dtype=_COL_I, count=m, offset=16 * m)[:] = bw
        return ("shm", self._shm.name, m)

    def close(self, kill: bool = False) -> None:
        """Close every shard, then release the shared-memory segments."""
        for shard in self.shards:
            shard.close(kill=kill)
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._segments = []
        self._shm = None


def spawn_columnar_shards(
    array: Callable,
    n: int,
    bandwidth: int,
    inputs: Sequence[Any],
    auxes: Sequence[Any],
    *,
    check: str,
    count: int,
    executor: str = "process",
    transport: str = "direct",
) -> ColumnarShardPool:
    """Build the shard pool for one shard-parallel columnar run.

    ``executor="process"`` forks one worker per shard (falling back to
    inline, with a :class:`RuntimeWarning`, where ``fork`` is
    unavailable) and preallocates the shared-memory broadcast image
    *before* forking so every worker inherits the mapping.
    """
    ranges = shard_ranges(n, count)
    context = None
    if executor == "process":
        context = _fork_context()
        if context is None:
            warnings.warn(
                "columnar engine: process executor needs the 'fork' start "
                "method outside a daemonic worker; falling back to inline "
                "shards",
                RuntimeWarning,
                stacklevel=4,
            )
            executor = "inline"
    shm = None
    segments: list = []
    if executor == "process":
        shm = _create_shm(24 * max(n, 1) + 4096)
        if shm is not None:
            segments.append(shm)
    shards: list = []
    try:
        for index, (lo, hi) in enumerate(ranges):
            if executor == "process":
                shards.append(
                    ProcessColumnarShard(
                        context,
                        array,
                        index,
                        lo,
                        hi,
                        n,
                        bandwidth,
                        inputs,
                        auxes,
                        check,
                        shm,
                    )
                )
            else:
                shards.append(
                    InlineColumnarShard(
                        array,
                        index,
                        lo,
                        hi,
                        n,
                        bandwidth,
                        inputs,
                        auxes,
                        check,
                        transport,
                    )
                )
    except BaseException:
        for shard in shards:
            shard.close(kill=True)
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except Exception:
                pass
        raise
    return ColumnarShardPool(shards, ranges, shm, segments)


@register_engine
class ShardedEngine(Engine):
    """Shard-parallel lockstep backend over the coroutine kernel.

    Parameters
    ----------
    check:
        Validation level (``"full"``, ``"bandwidth"`` — the default —
        or ``"off"``), with the same send-time semantics as the fast
        engine at each level.
    shards:
        Shard count; ``None`` means :data:`DEFAULT_SHARDS`, clamped
        to ``n``.  Results are identical for every shard count.
    executor:
        ``"inline"`` (default) advances every shard in-process;
        ``"process"`` forks one worker per shard and exchanges round
        traffic as pickle-5 frames.  Falls back to inline (with a
        :class:`RuntimeWarning`) where ``fork`` is unavailable.
    transport:
        ``"direct"`` hands inline shard updates over as objects;
        ``"pickle"`` round-trips them through :class:`ShardTransport`
        (process shards always use the pickled framing).
    record_transcripts:
        Force transcript recording even when the clique does not ask
        for it.

    Like the fast engine, the backend supports the plain congested
    clique only (broadcast-only cliques and CONGEST topologies need the
    reference engine).
    """

    name = "sharded"

    def __init__(
        self,
        check: str = "bandwidth",
        shards: "int | None" = None,
        executor: str = "inline",
        transport: str = "direct",
        record_transcripts: bool = False,
    ) -> None:
        check = canonical_check(check)
        if check not in CHECK_LEVELS:
            raise CliqueError(f"check must be one of {CHECK_LEVELS}, got {check!r}")
        if executor not in ("inline", "process"):
            raise CliqueError(
                f"executor must be 'inline' or 'process', got {executor!r}"
            )
        if transport not in ("direct", "pickle"):
            raise CliqueError(
                f"transport must be 'direct' or 'pickle', got {transport!r}"
            )
        if shards is not None and shards < 1:
            raise CliqueError(f"shards must be >= 1, got {shards}")
        self.check = check
        self.shards = shards
        self.executor = executor
        self.transport = transport
        self.record_transcripts = record_transcripts

    def describe(self) -> dict:
        """Engine configuration (cache key component)."""
        return {
            "engine": self.name,
            "check": self.check,
            "shards": self.shards,
            "executor": self.executor,
            "transport": self.transport,
        }

    def _spawn_shards(
        self,
        program: NodeProgram,
        n: int,
        bandwidth: int,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
    ) -> list:
        ranges = shard_ranges(n, self.shards or DEFAULT_SHARDS)
        executor = self.executor
        context = None
        if executor == "process":
            context = _fork_context()
            if context is None:
                warnings.warn(
                    "sharded engine: process executor needs the 'fork' "
                    "start method outside a daemonic worker; falling back "
                    "to inline shards",
                    RuntimeWarning,
                    stacklevel=3,
                )
                executor = "inline"
        shards: list = []
        try:
            for index, (lo, hi) in enumerate(ranges):
                if executor == "process":
                    shards.append(
                        ProcessShard(
                            context,
                            index,
                            lo,
                            hi,
                            program,
                            n,
                            bandwidth,
                            inputs,
                            auxes,
                            self.check,
                        )
                    )
                else:
                    shards.append(
                        InlineShard(
                            index,
                            lo,
                            hi,
                            program,
                            n,
                            bandwidth,
                            inputs,
                            auxes,
                            self.check,
                            self.transport,
                        )
                    )
        except BaseException:
            for shard in shards:
                shard.close(kill=True)
            raise
        return shards

    def execute(
        self,
        clique,
        program: NodeProgram,
        inputs: Sequence[Any],
        auxes: Sequence[Any],
        *,
        observer: Any = None,
        transcripts: bool | None = None,
        fault_plan: Any = None,
    ) -> RunResult:
        """Run ``program`` with the node range split across shards."""
        if clique.broadcast_only or clique.topology is not None:
            raise CliqueError(
                "the sharded engine supports the plain congested clique "
                "only; use the reference engine for broadcast-only "
                "cliques or CONGEST topologies"
            )
        n = clique.n
        obs = resolve_observer(observer)
        plan = resolve_fault_plan(fault_plan)
        injector = FaultInjector(plan, n, obs) if plan is not None else None
        per_message = obs is not None and obs.wants_messages
        track_halts = obs is not None and obs.wants_halts
        timer = PhaseTimer() if obs is not None and obs.wants_timing else None
        record = (
            transcripts
            if transcripts is not None
            else (self.record_transcripts or clique.record_transcripts)
        )
        if timer is not None:
            timer.start("spawn")
        shards = self._spawn_shards(program, n, clique.bandwidth, inputs, auxes)
        outputs: dict[int, Any] = {}
        records: list[list[RoundRecord]] = [[] for _ in range(n)]
        live = n
        rounds = 0
        total_bits = 0
        bulk_bits = 0
        sent_bits = [0] * n
        received_bits = [0] * n
        if obs is not None:
            obs.on_run_start(n=n, bandwidth=clique.bandwidth, engine=self.name)

        def absorb(updates: list[ShardUpdate]) -> list:
            """Record halts; return the concatenated message entries."""
            nonlocal live
            entries: list = []
            for halted, shard_entries in updates:
                for v, value in halted:
                    outputs[v] = value
                    live -= 1
                    if track_halts:
                        obs.on_halt(round=rounds, node=v)
                entries.extend(shard_entries)
            return entries

        try:
            # Initial local-computation phase (before the first round).
            if timer is not None:
                timer.start("advance")
            updates = [shard.step(0, None) for shard in shards]
            if timer is not None:
                obs.on_phases(round=0, seconds=timer.flush())
            entries = absorb(updates)

            while live or entries:
                if rounds >= clique.max_rounds:
                    raise RoundLimitExceeded(clique.max_rounds)
                this_round = rounds + 1

                # Deliver: expand, inject faults, account — semantics
                # identical to the fast engine's explicit path.
                if timer is not None:
                    timer.start("deliver")
                inboxes: list[dict[int, BitString]] = [{} for _ in range(n)]
                round_sent = [0] * n
                round_received = [0] * n
                if injector is not None:
                    injector.inject_pending(this_round, inboxes, round_received)
                sent_records: list[dict[int, BitString]] | None = (
                    [{} for _ in range(n)] if record else None
                )
                round_msg_bits = 0
                round_bulk_bits = 0
                counts = {"unicast": 0, "broadcast": 0, "bulk": 0}
                for src, dst, payload, kind in _expand(entries, n):
                    plen = len(payload)
                    if kind == "bulk":
                        round_bulk_bits += plen
                    else:
                        round_msg_bits += plen
                    counts[kind] += 1
                    round_sent[src] += plen
                    if injector is not None and kind != "bulk":
                        delivered = injector.deliver(this_round, src, dst, payload)
                    else:
                        delivered = payload
                    if delivered is not None:
                        round_received[dst] += plen
                        inboxes[dst][src] = delivered
                    if sent_records is not None:
                        sent_records[src][dst] = payload
                    if per_message and delivered is not None:
                        obs.on_message(
                            round=this_round,
                            src=src,
                            dst=dst,
                            bits=plen,
                            kind=kind,
                        )
                if injector is not None:
                    # Forged-identity messages land last, into slots no
                    # genuine delivery claimed.
                    injector.finish_round(this_round, inboxes, round_received)
                total_bits += round_msg_bits
                bulk_bits += round_bulk_bits
                for v in range(n):
                    sent_bits[v] += round_sent[v]
                    received_bits[v] += round_received[v]
                rounds = this_round
                if obs is not None:
                    obs.on_round(
                        RoundStats(
                            round=this_round,
                            unicast_messages=counts["unicast"],
                            broadcast_messages=counts["broadcast"],
                            bulk_messages=counts["bulk"],
                            message_bits=round_msg_bits,
                            bulk_bits=round_bulk_bits,
                            sent_bits=round_sent,
                            received_bits=round_received,
                        )
                    )
                if record:
                    for v in range(n):
                        records[v].append(
                            RoundRecord(
                                sent=sent_records[v],
                                received=dict(inboxes[v]),
                            )
                        )

                # Advance: hand each shard its inboxes, collect updates.
                if timer is not None:
                    timer.start("advance")
                updates = [
                    shard.step(this_round, inboxes[shard.lo : shard.hi])
                    for shard in shards
                ]
                if timer is not None:
                    obs.on_phases(round=this_round, seconds=timer.flush())
                entries = absorb(updates)

            all_counters: dict[int, dict] = {}
            for shard in shards:
                all_counters.update(shard.finish())
        except BaseException:
            for shard in shards:
                shard.close(kill=True)
            raise
        for shard in shards:
            shard.close()

        out_transcripts = None
        if record:
            out_transcripts = tuple(
                Transcript(node=v, n=n, rounds=tuple(records[v]))
                for v in range(n)
            )
        counters = tuple(all_counters[v] for v in range(n))
        metrics = None
        if obs is not None:
            obs.on_run_end(rounds=rounds, counters=counters)
            metrics = obs.run_metrics()
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            total_message_bits=total_bits,
            bulk_bits=bulk_bits,
            sent_bits=tuple(sent_bits),
            received_bits=tuple(received_bits),
            counters=counters,
            transcripts=out_transcripts,
            metrics=metrics,
        )


def _expand(entries: Sequence[tuple], n: int):
    """Yield ``(src, dst, payload, kind)`` with broadcasts fanned out."""
    for src, dst, payload, is_bulk in entries:
        if is_bulk:
            yield src, dst, payload, "bulk"
        elif dst == _BROADCAST:
            for u in range(n):
                if u != src:
                    yield src, u, payload, "broadcast"
        else:
            yield src, dst, payload, "unicast"


def _fanout_program(senders: int, rounds: int) -> Callable:
    """A broadcast stress program: nodes ``0..senders-1`` broadcast one
    bit per round, the rest idle — per-round load scales with
    ``senders * n`` while the task count scales with ``n``."""

    def prog(node):
        payload = BitString(node.id % 2, 1)
        for _ in range(rounds):
            if node.id < senders:
                node.send_to_all(payload)
            yield
        return None

    return prog


def fanout_spec(config: dict) -> RunSpec:
    """Picklable sweep factory for large-``n`` fan-out grids.

    ``config`` keys: ``n`` (clique size), ``rounds`` (broadcast rounds,
    default 1) and ``senders`` (how many nodes broadcast, default all).
    Used by the ``shard-sweep`` bench workload to push the sharded
    backend to ``n`` in the thousands without a graph-sized input.
    """
    n = int(config["n"])
    rounds = int(config.get("rounds", 1))
    senders = int(config.get("senders", n))
    return RunSpec(program=_fanout_program(min(senders, n), rounds), n=n)
