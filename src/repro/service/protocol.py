"""Wire protocol of the ``repro serve`` daemon.

Requests and replies are JSON objects framed with a 4-byte little-endian
length prefix over a local (``AF_UNIX``) stream socket.  One connection
carries one request/reply pair; concurrency comes from concurrent
connections, not multiplexing — which keeps both ends trivially correct
and lets the server apply backpressure per request.

Every request carries an ``"op"`` key; every reply an ``"ok"`` boolean.
A failed reply has ``"error"`` (``"busy"`` for backpressure rejections,
``"error"`` otherwise) and a human-readable ``"message"``;
:func:`raise_for_reply` maps these onto :class:`ServiceBusy` /
:class:`ServiceError`.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
from typing import Any

__all__ = [
    "MAX_MESSAGE_BYTES",
    "SOCKET_ENV",
    "ServiceBusy",
    "ServiceError",
    "default_socket_path",
    "raise_for_reply",
    "recv_message",
    "send_message",
]

#: Environment variable overriding the default socket location.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Upper bound on one framed message; a peer announcing more is treated
#: as corrupt (protects both ends from a garbage length prefix).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ServiceError(RuntimeError):
    """A service request failed (server-side error or protocol problem)."""


class ServiceBusy(ServiceError):
    """The daemon's request queue is full — back off and retry."""


def default_socket_path() -> str:
    """The socket path used when none is given: ``$REPRO_SERVICE_SOCKET``
    or a per-user file under the system temp directory."""
    env = os.environ.get(SOCKET_ENV)
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-serve-{uid}.sock")


def send_message(sock: Any, payload: dict) -> None:
    """Frame ``payload`` as length-prefixed JSON and send it whole."""
    data = json.dumps(payload, separators=(",", ":"), default=repr).encode()
    if len(data) > MAX_MESSAGE_BYTES:
        raise ServiceError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    sock.sendall(struct.pack("<I", len(data)) + data)


def _recv_exact(sock: Any, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EOFError(
                f"peer closed the connection with {remaining} of {size} "
                f"bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: Any) -> dict:
    """Read one framed JSON message; raises :class:`EOFError` when the
    peer closed the connection and :class:`ServiceError` on a corrupt
    frame."""
    (size,) = struct.unpack("<I", _recv_exact(sock, 4))
    if size > MAX_MESSAGE_BYTES:
        raise ServiceError(
            f"peer announced a {size}-byte frame (limit {MAX_MESSAGE_BYTES})"
        )
    try:
        payload = json.loads(_recv_exact(sock, size))
    except ValueError as exc:
        raise ServiceError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ServiceError(
            f"frame must decode to an object, got {type(payload).__name__}"
        )
    return payload


def raise_for_reply(reply: dict) -> dict:
    """Pass a successful reply through; raise the matching exception
    (:class:`ServiceBusy` or :class:`ServiceError`) for a failed one."""
    if reply.get("ok"):
        return reply
    message = reply.get("message", "service request failed")
    if reply.get("error") == "busy":
        raise ServiceBusy(message)
    raise ServiceError(message)
