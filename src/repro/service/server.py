"""The ``repro serve`` daemon.

A :class:`ReproServer` listens on a local socket and executes
run/sweep requests with state that stays warm across clients:

* the process-wide :class:`~repro.engine.pool.PersistentPool` — sweep
  workers fork once and survive between requests;
* a resident :class:`~repro.engine.cache.RunCache` with LRU eviction
  and admission control — repeated requests are answered from memory of
  prior work instead of recomputation;
* the imported algorithm/engine modules themselves — a remote ``run``
  skips the interpreter and import cold-start a fresh CLI invocation
  pays.

Lifecycle: an accept thread reads each connection's single request and
either answers control operations (``ping``/``status``/``shutdown``)
inline or enqueues work operations (``run``/``sweep``/``sleep``) on a
*bounded* queue drained by a fixed pool of worker threads.  When the
queue is full the request is refused immediately with a ``busy`` reply
(backpressure) rather than accepted into an unbounded backlog; clients
see :class:`~repro.service.protocol.ServiceBusy` and retry.  Shutdown
stops accepting, drains queued work, joins the workers and removes the
socket file.

Work requests are expressed against the algorithm catalog
(:data:`repro.engine.diff.CATALOG`), and cache keys are built with the
same :func:`~repro.engine.pool._point_key` scheme ``run_sweep`` uses —
so entries written by offline sweeps satisfy remote runs and vice versa.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from typing import Any

from dataclasses import replace

from ..clique.errors import CliqueError
from ..engine.cache import RunCache
from ..engine.diff import CATALOG, catalog_factory
from ..engine.pool import (
    _point_key,
    derive_seed,
    pool_stats,
    run_spec,
    run_sweep,
    shutdown_pool,
)
from ..engine.spec import ExecutionSpec
from .protocol import (
    ServiceError,
    default_socket_path,
    recv_message,
    send_message,
)

__all__ = ["ReproServer", "serve"]

#: Hard cap on the diagnostic ``sleep`` op (it exists to make queue
#: saturation testable, not to park worker threads).
MAX_SLEEP_SECONDS = 5.0

#: Upper bound on per-request sweep worker processes.
MAX_SWEEP_WORKERS = 8


def _json_safe(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-encodable values.

    Numpy scalars become Python scalars, arrays become lists, unknown
    leaves fall back to ``repr`` — replies must always be framable.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in obj]
    if hasattr(obj, "item") and hasattr(obj, "dtype"):
        try:
            return _json_safe(obj.item())
        except (ValueError, AttributeError):
            return _json_safe(obj.tolist())
    return repr(obj)


class ReproServer:
    """Long-running local-socket service wrapping the run substrate.

    Parameters
    ----------
    socket_path:
        Where to listen; defaults to
        :func:`~repro.service.protocol.default_socket_path`.
    workers:
        Worker *threads* draining the request queue — the daemon's
        concurrency level for in-flight requests (sweeps additionally
        fan out to the warm process pool).
    queue_size:
        Bound on requests accepted but not yet picked up by a worker;
        the knob behind the ``busy`` backpressure reply.
    cache_root:
        Directory of the resident :class:`RunCache` (``None`` uses the
        cache's default location).
    cache_max_entries / cache_max_entry_bytes:
        LRU and admission bounds passed through to the cache.
    """

    def __init__(
        self,
        socket_path: "str | None" = None,
        *,
        workers: int = 4,
        queue_size: int = 32,
        cache_root: "str | os.PathLike | None" = None,
        cache_max_entries: "int | None" = None,
        cache_max_entry_bytes: "int | None" = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size}")
        self.socket_path = socket_path or default_socket_path()
        self.workers = workers
        self.queue_size = queue_size
        self.cache = RunCache(
            cache_root,
            max_entries=cache_max_entries,
            max_entry_bytes=cache_max_entry_bytes,
        )
        self._queue: "queue.Queue[tuple[socket.socket, dict]]" = queue.Queue(
            maxsize=queue_size
        )
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._listener: "socket.socket | None" = None
        self._started_at: "float | None" = None
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "completed": 0,
            "errors": 0,
            "busy_rejections": 0,
            "peak_queue_depth": 0,
            "in_flight": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def _claim_socket(self) -> socket.socket:
        """Bind the listener, replacing a stale socket file if the
        previous daemon died without cleanup; refuse to displace a live
        one."""
        if os.path.exists(self.socket_path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(1.0)
                probe.connect(self.socket_path)
            except OSError:
                os.unlink(self.socket_path)  # stale leftover
            else:
                probe.close()
                raise ServiceError(
                    f"a daemon is already listening on {self.socket_path}"
                )
            finally:
                probe.close()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(self.queue_size + self.workers)
        listener.settimeout(0.2)
        return listener

    def start(self) -> None:
        """Bind the socket and start the accept and worker threads."""
        if self._listener is not None:
            raise ServiceError("server already started")
        self._listener = self._claim_socket()
        self._started_at = time.monotonic()
        self._stop.clear()
        accept = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        accept.start()
        self._threads = [accept]
        for index in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)

    def stop(self) -> None:
        """Stop accepting, drain queued work, join threads, clean up."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        shutdown_pool()

    def serve_forever(self) -> None:
        """:meth:`start`, then block until a ``shutdown`` request (or
        :meth:`stop` from another thread) ends the daemon."""
        self.start()
        try:
            while not self._stop.wait(0.2):
                pass
        finally:
            self.stop()

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- threads ---------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._receive(conn)

    def _receive(self, conn: socket.socket) -> None:
        """Read one request; answer control ops inline, queue work ops."""
        try:
            conn.settimeout(10.0)
            request = recv_message(conn)
        except (OSError, EOFError, ServiceError):
            conn.close()
            return
        with self._lock:
            self._counters["requests"] += 1
        op = request.get("op")
        if op in ("ping", "status", "shutdown"):
            self._reply(conn, self._handle_control(op))
            if op == "shutdown":
                self._stop.set()
            return
        try:
            self._queue.put_nowait((conn, request))
        except queue.Full:
            with self._lock:
                self._counters["busy_rejections"] += 1
            self._reply(
                conn,
                {
                    "ok": False,
                    "error": "busy",
                    "message": (
                        f"request queue is full "
                        f"({self.queue_size} pending); retry later"
                    ),
                },
            )
            return
        with self._lock:
            depth = self._queue.qsize()
            if depth > self._counters["peak_queue_depth"]:
                self._counters["peak_queue_depth"] = depth

    def _worker_loop(self) -> None:
        while True:
            try:
                conn, request = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            with self._lock:
                self._counters["in_flight"] += 1
            try:
                reply = self._handle_work(request)
                with self._lock:
                    self._counters["completed"] += 1
            except Exception as exc:
                with self._lock:
                    self._counters["errors"] += 1
                reply = {
                    "ok": False,
                    "error": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            finally:
                with self._lock:
                    self._counters["in_flight"] -= 1
            self._reply(conn, reply)

    def _reply(self, conn: socket.socket, payload: dict) -> None:
        try:
            send_message(conn, payload)
        except OSError:  # pragma: no cover - client went away
            pass
        finally:
            conn.close()

    # -- request handling ------------------------------------------------

    def status(self) -> dict:
        """The daemon's state (the ``status`` op's payload)."""
        with self._lock:
            counters = dict(self._counters)
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "pid": os.getpid(),
            "socket": self.socket_path,
            "uptime_seconds": round(uptime, 3),
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.queue_size,
            "counters": counters,
            "cache": self.cache.stats(),
            "pool": pool_stats(),
        }

    def _handle_control(self, op: str) -> dict:
        if op == "ping":
            from .. import __version__

            return {"ok": True, "pid": os.getpid(), "version": __version__}
        if op == "status":
            return {"ok": True, "status": self.status()}
        return {"ok": True, "stopping": True}  # shutdown

    def _handle_work(self, request: dict) -> dict:
        op = request.get("op")
        if op == "run":
            return self._handle_run(request)
        if op == "sweep":
            return self._handle_sweep(request)
        if op == "sleep":
            seconds = min(float(request.get("seconds", 0.0)), MAX_SLEEP_SECONDS)
            time.sleep(max(0.0, seconds))
            return {"ok": True, "slept": seconds}
        raise ServiceError(f"unknown op {op!r}")

    def _catalog_config(self, request: dict) -> dict:
        algorithm = request.get("algorithm")
        if algorithm not in CATALOG:
            raise ServiceError(
                f"unknown algorithm {algorithm!r}; known: {sorted(CATALOG)}"
            )
        config = dict(request.get("config") or {})
        config["algorithm"] = algorithm
        return config

    def _request_execution(self, request: dict) -> ExecutionSpec:
        """Resolve the request's execution settings into one spec.

        A request may carry an ``"execution"`` object (the
        :meth:`ExecutionSpec.to_dict` form) and/or the flat legacy
        ``engine``/``observer``/``fault_plan`` keys; the merge rules of
        :meth:`ExecutionSpec.merged` apply, so a field set both ways
        must agree.  The service default engine is ``fast``.
        """
        raw = request.get("execution")
        if raw is not None and not isinstance(raw, dict):
            raise ServiceError(
                f"'execution' must be an object (the ExecutionSpec "
                f"to_dict form), got {type(raw).__name__}"
            )
        try:
            spec = ExecutionSpec.coerce(raw).merged(
                engine=request.get("engine"),
                observer=request.get("observer"),
                fault_plan=request.get("fault_plan"),
            )
        except CliqueError as exc:
            raise ServiceError(str(exc)) from None
        if spec.transcripts is not None:
            raise ServiceError(
                "transcript recording is not available over the service "
                "protocol (transcripts do not serialise); drop the "
                "'transcripts' field"
            )
        if spec.engine is None:
            spec = replace(spec, engine="fast")
        return spec

    def _handle_run(self, request: dict) -> dict:
        config = self._catalog_config(request)
        config.setdefault("seed", derive_seed(0, 0, config))
        spec = self._request_execution(request)
        use_cache = bool(request.get("cache", True))
        key = None
        cached = False
        result = value = None
        if use_cache:
            desc = spec.describe()
            key = _point_key(
                self.cache,
                catalog_factory,
                config,
                desc["engine"],
                desc["observer"],
                desc["fault_plan"],
            )
            hit = self.cache.get(key)
            if hit is not None:
                result, value = hit
                cached = True
        if result is None:
            result, value = run_spec(
                catalog_factory(dict(config)), execution=spec
            )
            if key is not None:
                self.cache.put(key, (result, value))
        try:
            common = result.common_output()
        except CliqueError:
            common = None  # per-node outputs (e.g. apsp distance rows)
        reply = {
            "ok": True,
            "cached": cached,
            "config": _json_safe(config),
            "rounds": result.rounds,
            "total_message_bits": result.total_message_bits,
            "bulk_bits": result.bulk_bits,
            "common_output": _json_safe(common),
            "value": _json_safe(value),
        }
        if result.metrics is not None:
            reply["metrics"] = _json_safe(result.metrics.summary())
        return reply

    def _handle_sweep(self, request: dict) -> dict:
        base = self._catalog_config(request)
        base.pop("algorithm")
        raw_configs = request.get("configs")
        if not isinstance(raw_configs, list) or not raw_configs:
            raise ServiceError("sweep needs a non-empty 'configs' list")
        configs = []
        for point in raw_configs:
            if not isinstance(point, dict):
                raise ServiceError("every sweep config must be an object")
            merged = dict(base)
            merged.update(point)
            merged["algorithm"] = request["algorithm"]
            configs.append(merged)
        workers = request.get("workers")
        if workers is not None:
            workers = max(1, min(int(workers), MAX_SWEEP_WORKERS))
        use_cache = bool(request.get("cache", True))
        outcomes = run_sweep(
            catalog_factory,
            configs,
            workers=workers,
            execution=self._request_execution(request),
            cache=self.cache if use_cache else None,
            base_seed=int(request.get("base_seed", 0)),
        )
        from ..engine.pool import aggregate_sweep_metrics

        failed = [o for o in outcomes if o.failed]
        return {
            "ok": True,
            "points": len(outcomes),
            "from_cache": sum(1 for o in outcomes if o.from_cache),
            "failed": len(failed),
            "rounds": [
                o.result.rounds if o.result is not None else None
                for o in outcomes
            ],
            "summary": _json_safe(aggregate_sweep_metrics(outcomes)),
        }


def serve(
    socket_path: "str | None" = None,
    *,
    workers: int = 4,
    queue_size: int = 32,
    cache_root: "str | os.PathLike | None" = None,
    cache_max_entries: "int | None" = None,
    cache_max_entry_bytes: "int | None" = None,
) -> None:
    """Run a :class:`ReproServer` in the foreground until shut down."""
    ReproServer(
        socket_path,
        workers=workers,
        queue_size=queue_size,
        cache_root=cache_root,
        cache_max_entries=cache_max_entries,
        cache_max_entry_bytes=cache_max_entry_bytes,
    ).serve_forever()
